/**
 * @file
 * Tests of the arrival-trace subsystem: CSV/JSONL loaders (round
 * trips, column order independence, malformed input), seeded
 * generator determinism (same seed => byte-identical trace, different
 * seed => different trace) across all three arrival kinds, generator
 * spec parsing, and the QoS admission controller's greedy feasible
 * subset.
 */

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "arrivals/admission.h"
#include "arrivals/generate.h"
#include "arrivals/trace.h"

namespace diva
{
namespace
{

std::string
traceCsv(const ArrivalTrace &trace)
{
    std::ostringstream oss;
    writeTraceCsv(oss, trace);
    return oss.str();
}

TEST(Trace, CsvRoundTrips)
{
    ArrivalTrace trace;
    trace.name = "round-trip";
    TenantJob a;
    a.name = "a0:ResNet-50";
    a.model = "ResNet-50";
    a.batch = 32;
    a.arrivalSec = 0.125;
    a.departSec = 2.5;
    a.steps = 64;
    a.qosStepsPerSec = 1.75;
    a.priority = 2;
    a.algorithm = TrainingAlgorithm::kDpSgd;
    trace.jobs.push_back(a);
    TenantJob b;
    b.name = "a1:BERT-base";
    b.model = "BERT-base";
    b.batch = 8;
    b.arrivalSec = 0.3333333333333333;
    b.steps = 16;
    trace.jobs.push_back(b);

    const std::string csv = traceCsv(trace);
    std::istringstream in(csv);
    std::string err;
    const ArrivalTrace loaded = loadTraceCsv(in, &err);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_EQ(loaded.name, "round-trip");
    ASSERT_EQ(loaded.jobs.size(), 2u);
    EXPECT_EQ(loaded.jobs[0].name, "a0:ResNet-50");
    EXPECT_EQ(loaded.jobs[0].model, "ResNet-50");
    EXPECT_EQ(loaded.jobs[0].batch, 32);
    EXPECT_DOUBLE_EQ(loaded.jobs[0].arrivalSec, 0.125);
    EXPECT_DOUBLE_EQ(loaded.jobs[0].departSec, 2.5);
    EXPECT_EQ(loaded.jobs[0].steps, 64u);
    EXPECT_DOUBLE_EQ(loaded.jobs[0].qosStepsPerSec, 1.75);
    EXPECT_EQ(loaded.jobs[0].priority, 2);
    EXPECT_EQ(loaded.jobs[0].algorithm, TrainingAlgorithm::kDpSgd);
    // The shortest-round-trip double formatter must reproduce even
    // non-terminating decimals exactly.
    EXPECT_DOUBLE_EQ(loaded.jobs[1].arrivalSec, 0.3333333333333333);

    // Re-emitting the loaded trace is byte-identical.
    EXPECT_EQ(traceCsv(loaded), csv);
}

TEST(Trace, CsvColumnsMayReorderAndUnknownsReject)
{
    std::istringstream in("arrival_s,model,steps\n"
                          "0.5,SqueezeNet,8\n"
                          "1,MobileNet,4\n");
    std::string err;
    const ArrivalTrace t = loadTraceCsv(in, &err);
    ASSERT_TRUE(err.empty()) << err;
    ASSERT_EQ(t.jobs.size(), 2u);
    EXPECT_EQ(t.jobs[0].model, "SqueezeNet");
    EXPECT_DOUBLE_EQ(t.jobs[0].arrivalSec, 0.5);
    EXPECT_EQ(t.jobs[0].name, "a0:SqueezeNet") << "auto-named";

    std::istringstream bad("model,frobnicate\nSqueezeNet,1\n");
    loadTraceCsv(bad, &err);
    EXPECT_NE(err.find("unknown column"), std::string::npos) << err;

    std::istringstream short_row("model,steps\nSqueezeNet\n");
    loadTraceCsv(short_row, &err);
    EXPECT_NE(err.find("expected 2 cells"), std::string::npos) << err;

    std::istringstream negative("model,arrival_s\nSqueezeNet,-1\n");
    loadTraceCsv(negative, &err);
    EXPECT_FALSE(err.empty()) << "negative arrival must not load";

    std::istringstream empty("");
    loadTraceCsv(empty, &err);
    EXPECT_FALSE(err.empty());
}

TEST(Trace, JsonlLoadsAndToleratesExtraKeys)
{
    std::istringstream in(
        "{\"trace\": \"recorded\"}\n"
        "\n"
        "{\"model\": \"SqueezeNet\", \"arrival_s\": 0.25, "
        "\"steps\": 8, \"qos_sps\": 2, \"recorded_by\": \"prod\"}\n"
        "{\"name\": \"late\", \"model\": \"BERT-base\", "
        "\"arrival_s\": 1.5, \"depart_s\": 3, \"steps\": 0}\n");
    std::string err;
    const ArrivalTrace t = loadTraceJsonl(in, &err);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_EQ(t.name, "recorded");
    ASSERT_EQ(t.jobs.size(), 2u);
    EXPECT_EQ(t.jobs[0].model, "SqueezeNet");
    EXPECT_DOUBLE_EQ(t.jobs[0].qosStepsPerSec, 2.0);
    EXPECT_EQ(t.jobs[1].name, "late");
    EXPECT_DOUBLE_EQ(t.jobs[1].departSec, 3.0);
    EXPECT_EQ(t.jobs[1].steps, 0u) << "unbounded until departure";

    std::istringstream bad("not json\n");
    loadTraceJsonl(bad, &err);
    EXPECT_FALSE(err.empty());

    std::istringstream no_model("{\"arrival_s\": 1}\n");
    loadTraceJsonl(no_model, &err);
    EXPECT_NE(err.find("model"), std::string::npos) << err;
}

TEST(Trace, ValidationCatchesOrderAndLifetimes)
{
    ArrivalTrace t;
    t.name = "bad";
    TenantJob j;
    j.name = "a0";
    j.model = "SqueezeNet";
    j.steps = 4;
    j.arrivalSec = 2.0;
    t.jobs.push_back(j);
    j.name = "a1";
    j.arrivalSec = 1.0; // decreasing
    t.jobs.push_back(j);
    EXPECT_NE(t.validationError(false).find("non-decreasing"),
              std::string::npos);

    // Departure before arrival is rejected by the job validation.
    ArrivalTrace d;
    d.name = "depart";
    j.name = "a0";
    j.arrivalSec = 5.0;
    j.departSec = 2.0;
    d.jobs.push_back(j);
    EXPECT_NE(d.validationError(false).find("departure"),
              std::string::npos);

    EXPECT_FALSE(ArrivalTrace{}.validationError(false).empty());
}

TEST(Generate, SameSeedIsByteIdenticalDifferentSeedIsNot)
{
    for (ArrivalKind kind :
         {ArrivalKind::kPoisson, ArrivalKind::kOnOff,
          ArrivalKind::kDiurnal}) {
        TraceGenSpec spec;
        spec.kind = kind;
        spec.ratePerSec = 6.0;
        spec.horizonSec = 4.0;
        spec.steps = 4;
        spec.seed = 42;
        const std::string first = traceCsv(generateTrace(spec));
        const std::string second = traceCsv(generateTrace(spec));
        EXPECT_EQ(first, second)
            << arrivalKindName(kind) << ": same seed must replay";
        spec.seed = 43;
        EXPECT_NE(traceCsv(generateTrace(spec)), first)
            << arrivalKindName(kind) << ": seeds must differentiate";
    }
}

TEST(Generate, ArrivalsRespectHorizonCapAndOrdering)
{
    TraceGenSpec spec;
    spec.ratePerSec = 50.0;
    spec.horizonSec = 2.0;
    spec.steps = 1;
    spec.maxTenants = 10;
    const ArrivalTrace capped = generateTrace(spec);
    EXPECT_EQ(capped.jobs.size(), 10u) << "cap bounds rate*horizon";

    spec.maxTenants = 1000;
    const ArrivalTrace t = generateTrace(spec);
    EXPECT_GT(t.jobs.size(), 50u) << "~100 expected at rate 50 x 2 s";
    EXPECT_LT(t.jobs.size(), 200u);
    for (std::size_t i = 0; i < t.jobs.size(); ++i) {
        EXPECT_GE(t.jobs[i].arrivalSec, 0.0);
        EXPECT_LT(t.jobs[i].arrivalSec, spec.horizonSec);
        if (i > 0)
            EXPECT_GE(t.jobs[i].arrivalSec, t.jobs[i - 1].arrivalSec);
    }
    EXPECT_TRUE(t.validationError(false).empty())
        << t.validationError(false);
}

TEST(Generate, OnOffLeavesSilentWindows)
{
    TraceGenSpec spec;
    spec.kind = ArrivalKind::kOnOff;
    spec.ratePerSec = 40.0;
    spec.onSec = 0.5;
    spec.offSec = 0.5;
    spec.horizonSec = 4.0;
    spec.steps = 1;
    spec.maxTenants = 1000;
    const ArrivalTrace t = generateTrace(spec);
    ASSERT_GT(t.jobs.size(), 20u);
    for (const TenantJob &j : t.jobs) {
        // Arrivals only land in the on half of each 1 s cycle.
        const double phase = std::fmod(j.arrivalSec, 1.0);
        EXPECT_LT(phase, 0.5) << "arrival inside an off window";
    }
}

TEST(Generate, HoldSetsDeparturesAndTemplateApplies)
{
    TraceGenSpec spec;
    spec.ratePerSec = 8.0;
    spec.horizonSec = 2.0;
    spec.steps = 0;
    spec.holdSec = 1.5;
    spec.qosStepsPerSec = 3.0;
    spec.batch = 16;
    const ArrivalTrace t = generateTrace(spec);
    ASSERT_FALSE(t.jobs.empty());
    for (const TenantJob &j : t.jobs) {
        EXPECT_DOUBLE_EQ(j.departSec, j.arrivalSec + 1.5);
        EXPECT_DOUBLE_EQ(j.qosStepsPerSec, 3.0);
        EXPECT_EQ(j.batch, 16);
        EXPECT_EQ(j.steps, 0u);
    }
    EXPECT_TRUE(t.validationError(false).empty())
        << "unbounded steps are fine with departures";
}

TEST(Generate, SpecParsing)
{
    std::string err;
    const auto spec = parseTraceGenSpec(
        "onoff:rate=12,seed=9,horizon=6,on=0.25,off=0.75,steps=8,"
        "qos=1.5,hold=2,batch=4,cap=32,prios=2",
        &err);
    ASSERT_TRUE(spec) << err;
    EXPECT_EQ(spec->kind, ArrivalKind::kOnOff);
    EXPECT_DOUBLE_EQ(spec->ratePerSec, 12.0);
    EXPECT_EQ(spec->seed, 9u);
    EXPECT_DOUBLE_EQ(spec->horizonSec, 6.0);
    EXPECT_DOUBLE_EQ(spec->onSec, 0.25);
    EXPECT_DOUBLE_EQ(spec->offSec, 0.75);
    EXPECT_EQ(spec->steps, 8u);
    EXPECT_TRUE(spec->stepsSet);
    EXPECT_DOUBLE_EQ(spec->qosStepsPerSec, 1.5);
    EXPECT_TRUE(spec->qosSet);
    EXPECT_DOUBLE_EQ(spec->holdSec, 2.0);
    EXPECT_EQ(spec->batch, 4);
    EXPECT_EQ(spec->maxTenants, 32);
    EXPECT_EQ(spec->priorityLevels, 2);

    EXPECT_TRUE(parseTraceGenSpec("poisson", &err)) << err;
    EXPECT_FALSE(parseTraceGenSpec("zipf:rate=1", &err));
    EXPECT_FALSE(parseTraceGenSpec("poisson:rate=0", &err));
    EXPECT_FALSE(parseTraceGenSpec("poisson:rate=nope", &err));
    EXPECT_FALSE(parseTraceGenSpec("poisson:warp=9", &err));
    EXPECT_FALSE(parseTraceGenSpec("poisson:rate", &err));
    EXPECT_FALSE(parseTraceGenSpec("poisson:steps=0", &err))
        << "steps 0 without hold cannot terminate";
}

TEST(Admission, GreedyFeasibleSubsetByPriority)
{
    auto job = [](const char *name, double rate, int prio) {
        TenantJob j;
        j.name = name;
        j.model = "SqueezeNet";
        j.steps = 8;
        j.qosStepsPerSec = rate;
        j.priority = prio;
        return j;
    };
    auto cost = [](double seconds) {
        IterationCost c;
        c.seconds = seconds;
        c.energyJ = 1.0;
        return c;
    };
    // Demands: 0.6, 0.6, 0.3, 0 (best effort). Cap 1.0.
    const std::vector<TenantJob> jobs = {
        job("big-low", 0.6, 0), job("big-high", 0.6, 5),
        job("small", 0.3, 1), job("effort", 0.0, 0)};
    const std::vector<IterationCost> costs = {cost(1.0), cost(1.0),
                                              cost(1.0), cost(1.0)};
    const AdmissionDecision d =
        decideAdmission(jobs, costs, AdmissionOptions{});
    EXPECT_DOUBLE_EQ(d.totalDemand, 1.5);
    // Priority 5 admits first (0.6), then "small" (0.9); the
    // low-priority 0.6 would hit 1.5 and is shed; best effort rides.
    EXPECT_FALSE(d.admitted[0]);
    EXPECT_TRUE(d.admitted[1]);
    EXPECT_TRUE(d.admitted[2]);
    EXPECT_TRUE(d.admitted[3]) << "zero-demand tenants always admit";
    EXPECT_EQ(d.admittedCount, 3u);
    EXPECT_EQ(d.rejectedCount, 1u);
    EXPECT_DOUBLE_EQ(d.admittedDemand, 0.9);

    // A tighter cap sheds more; a looser one admits everything.
    AdmissionOptions tight;
    tight.utilizationCap = 0.5;
    EXPECT_EQ(decideAdmission(jobs, costs, tight).admittedCount, 2u)
        << "only 'small' (0.3) and the best-effort tenant fit 0.5";
    AdmissionOptions loose;
    loose.utilizationCap = 2.0;
    EXPECT_EQ(decideAdmission(jobs, costs, loose).rejectedCount, 0u);

    // Deadline targets demand steps*cost over their window.
    TenantJob dl;
    dl.name = "deadline";
    dl.model = "SqueezeNet";
    dl.steps = 10;
    dl.qosDeadlineSec = 5.0;
    EXPECT_DOUBLE_EQ(qosUtilizationDemand(dl, cost(0.25)), 0.5);
}

} // namespace
} // namespace diva
