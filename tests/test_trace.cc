/**
 * @file
 * Tests for op-level tracing: completeness vs the aggregate result,
 * top-k selection and report rendering.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "arch/accelerator_config.h"
#include "models/zoo.h"
#include "sim/executor.h"
#include "sim/trace.h"
#include "train/planner.h"

namespace diva
{
namespace
{

TEST(Trace, OneRecordPerOp)
{
    const OpStream stream =
        buildOpStream(resnet50(), TrainingAlgorithm::kDpSgdR, 16);
    Trace trace;
    Executor(divaDefault(true)).run(stream, &trace);
    EXPECT_EQ(trace.size(), stream.ops.size());
    for (std::size_t i = 0; i < trace.size(); ++i)
        EXPECT_EQ(trace[i].index, i);
}

TEST(Trace, CyclesSumToAggregate)
{
    const OpStream stream =
        buildOpStream(vgg16(), TrainingAlgorithm::kDpSgdR, 16);
    for (const auto &cfg :
         {tpuV3Ws(), systolicOs(true), divaDefault(true)}) {
        Trace trace;
        const SimResult r = Executor(cfg).run(stream, &trace);
        Cycles sum = 0;
        Bytes dram = 0;
        Macs macs = 0;
        for (const auto &t : trace) {
            sum += t.cycles;
            dram += t.dramBytes;
            macs += t.macs;
        }
        EXPECT_EQ(sum, r.totalCycles()) << cfg.name;
        EXPECT_EQ(dram, r.totalDram().total()) << cfg.name;
        EXPECT_EQ(macs, r.totalMacs()) << cfg.name;
    }
}

TEST(Trace, NullTraceUnchangedResult)
{
    const OpStream stream =
        buildOpStream(bertBase(), TrainingAlgorithm::kDpSgdR, 4);
    const Executor exec(divaDefault(true));
    Trace trace;
    const SimResult with = exec.run(stream, &trace);
    const SimResult without = exec.run(stream);
    EXPECT_EQ(with.totalCycles(), without.totalCycles());
}

TEST(Trace, GemmDetailCarriesShape)
{
    const OpStream stream =
        buildOpStream(bertBase(), TrainingAlgorithm::kSgd, 4);
    Trace trace;
    Executor(tpuV3Ws()).run(stream, &trace);
    bool found = false;
    for (const auto &t : trace) {
        if (t.type == OpType::kGemm) {
            EXPECT_NE(t.detail.find('x'), std::string::npos);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(Trace, TopOpsSortedAndBounded)
{
    const OpStream stream =
        buildOpStream(resnet152(), TrainingAlgorithm::kDpSgdR, 64);
    Trace trace;
    Executor(tpuV3Ws()).run(stream, &trace);
    const auto top = topOpsByCycles(trace, 5);
    ASSERT_EQ(top.size(), 5u);
    for (std::size_t i = 1; i < top.size(); ++i)
        EXPECT_GE(top[i - 1].cycles, top[i].cycles);
    // At a realistic DP batch, the hot set on WS must include the
    // per-example grad GEMMs or the norm derivation (Figure 5).
    bool bottleneck_in_top = false;
    for (const auto &t : top) {
        bottleneck_in_top = bottleneck_in_top ||
                            t.stage == Stage::kPerExampleGrad ||
                            t.stage == Stage::kGradNorm;
    }
    EXPECT_TRUE(bottleneck_in_top);
}

TEST(Trace, TopOpsHandlesShortTraces)
{
    Trace trace;
    trace.push_back({});
    EXPECT_EQ(topOpsByCycles(trace, 10).size(), 1u);
    EXPECT_EQ(topOpsByCycles({}, 10).size(), 0u);
}

TEST(Trace, LayerCyclesAggregates)
{
    const OpStream stream =
        buildOpStream(vgg16(), TrainingAlgorithm::kSgd, 8);
    Trace trace;
    Executor(tpuV3Ws()).run(stream, &trace);
    // block1.conv1 appears in forward and per-batch wgrad (act-grad is
    // skipped for the first layer).
    const Cycles c = layerCycles(trace, "block1.conv1");
    EXPECT_GT(c, 0u);
    EXPECT_EQ(layerCycles(trace, "no-such-layer"), 0u);
}

TEST(Trace, ReportRenders)
{
    const OpStream stream =
        buildOpStream(mobilenet(), TrainingAlgorithm::kDpSgdR, 8);
    Trace trace;
    Executor(divaDefault(true)).run(stream, &trace);
    std::ostringstream oss;
    printTraceReport(oss, trace, 5);
    const std::string out = oss.str();
    EXPECT_NE(out.find("cycles total"), std::string::npos);
    EXPECT_NE(out.find("Fwdprop"), std::string::npos);
    EXPECT_NE(out.find("gemm"), std::string::npos);
}

} // namespace
} // namespace diva
