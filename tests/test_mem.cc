/**
 * @file
 * Unit tests for the DRAM timing model and SRAM buffer partitioning.
 */

#include <gtest/gtest.h>

#include "arch/accelerator_config.h"
#include "mem/dram_model.h"
#include "mem/sram_buffer.h"

namespace diva
{
namespace
{

TEST(DramModel, ZeroBytesIsFree)
{
    const DramModel dram(tpuV3Ws());
    EXPECT_EQ(dram.transferCycles(0), 0u);
    EXPECT_EQ(dram.streamingCycles(0), 0u);
}

TEST(DramModel, LatencyChargedOncePerTransfer)
{
    const AcceleratorConfig cfg = tpuV3Ws();
    const DramModel dram(cfg);
    const Cycles one_byte = dram.transferCycles(1);
    EXPECT_EQ(one_byte, cfg.dramLatencyCycles + 1);
}

TEST(DramModel, StreamingMatchesBandwidth)
{
    const AcceleratorConfig cfg = tpuV3Ws();
    const DramModel dram(cfg);
    // 478.7 B/cycle -> 478700 bytes should take ~1000 cycles.
    const Cycles c = dram.streamingCycles(478700);
    EXPECT_NEAR(double(c), 1000.0, 2.0);
}

TEST(DramModel, StreamingScalesLinearly)
{
    const DramModel dram(tpuV3Ws());
    const Cycles c1 = dram.streamingCycles(1_MiB);
    const Cycles c4 = dram.streamingCycles(4_MiB);
    EXPECT_NEAR(double(c4), 4.0 * double(c1), 4.0);
}

TEST(DramModel, HigherBandwidthIsFaster)
{
    AcceleratorConfig fast = tpuV3Ws();
    fast.dramBandwidthGBs = 900.0;
    EXPECT_LT(DramModel(fast).streamingCycles(1_GiB),
              DramModel(tpuV3Ws()).streamingCycles(1_GiB));
}

TEST(DramTraffic, Accumulates)
{
    DramTraffic a{100, 50};
    const DramTraffic b{1, 2};
    a += b;
    EXPECT_EQ(a.readBytes, 101u);
    EXPECT_EQ(a.writeBytes, 52u);
    EXPECT_EQ(a.total(), 153u);
}

TEST(SramBuffer, DefaultPartitionSumsToTotal)
{
    const AcceleratorConfig cfg = tpuV3Ws();
    const SramBuffer sram(cfg);
    EXPECT_EQ(sram.totalCapacity(), cfg.sramBytes);
    EXPECT_GT(sram.lhsCapacity(), 0u);
    EXPECT_GT(sram.rhsCapacity(), 0u);
    // TPUv3's output (vector memory) partition is the largest.
    EXPECT_GE(sram.outCapacity(), sram.lhsCapacity());
    EXPECT_GE(sram.outCapacity(), sram.rhsCapacity());
}

TEST(SramBuffer, FitChecks)
{
    const SramBuffer sram(tpuV3Ws(), 0.25, 0.25);
    EXPECT_TRUE(sram.lhsFits(4_MiB));
    EXPECT_FALSE(sram.lhsFits(4_MiB + 1));
    EXPECT_TRUE(sram.rhsFits(4_MiB));
    EXPECT_TRUE(sram.outFits(8_MiB));
    EXPECT_FALSE(sram.outFits(8_MiB + 1));
}

TEST(SramBuffer, CustomFractions)
{
    const SramBuffer sram(tpuV3Ws(), 0.5, 0.25);
    EXPECT_EQ(sram.lhsCapacity(), 8_MiB);
    EXPECT_EQ(sram.rhsCapacity(), 4_MiB);
    EXPECT_EQ(sram.outCapacity(), 4_MiB);
}

TEST(SramBuffer, RejectsInvalidFractions)
{
    EXPECT_THROW(SramBuffer(tpuV3Ws(), 0.6, 0.5), std::runtime_error);
    EXPECT_THROW(SramBuffer(tpuV3Ws(), 0.0, 0.5), std::runtime_error);
    EXPECT_THROW(SramBuffer(tpuV3Ws(), 0.5, -0.1), std::runtime_error);
}

} // namespace
} // namespace diva
