/**
 * @file
 * Tests for the functional ConvNet: gradient consistency, the DP-SGD
 * vs DP-SGD(R) equivalence with convolutional per-example gradients,
 * and DP training convergence on a synthetic image task.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "dp/convnet.h"
#include "dp/data.h"

namespace diva
{
namespace
{

ConvGeometry
smallGeom()
{
    ConvGeometry g;
    g.inChannels = 1;
    g.outChannels = 4;
    g.kernelH = g.kernelW = 3;
    g.stride = 1;
    g.padding = 1;
    g.inH = g.inW = 6;
    return g;
}

struct Problem
{
    Tensor x;
    std::vector<int> y;
};

Problem
makeImages(std::int64_t batch, int classes, std::uint64_t seed)
{
    Rng rng(seed);
    const ConvGeometry g = smallGeom();
    Dataset data = makeSyntheticClassification(
        batch, int(g.inChannels * g.inH * g.inW), classes, rng);
    return {std::move(data.x), std::move(data.y)};
}

TEST(ConvNet, ForwardShape)
{
    Rng rng(1);
    const ConvNet net(smallGeom(), 3, rng);
    const Problem p = makeImages(5, 3, 2);
    const Tensor logits = net.forward(p.x);
    EXPECT_EQ(logits.rows(), 5);
    EXPECT_EQ(logits.cols(), 3);
    EXPECT_EQ(net.paramCount(), (9 * 4 + 4) + (4 * 36 * 3 + 3));
}

TEST(ConvNet, ReweightedUnitWeightsEqualsSumOfPerExample)
{
    Rng rng(3);
    const ConvNet net(smallGeom(), 3, rng);
    const Problem p = makeImages(6, 3, 4);
    ConvNet::Cache cache;
    Tensor dlogits;
    net.lossAndLogitGrad(p.x, p.y, cache, dlogits);

    ConvNetGrads fused = net.zeroGrads();
    net.backwardReweighted(cache, dlogits,
                           std::vector<double>(6, 1.0), fused);

    ConvNetGrads sum = net.zeroGrads();
    ConvNetGrads ex = net.zeroGrads();
    for (std::int64_t i = 0; i < 6; ++i) {
        net.perExampleGrad(cache, dlogits, i, ex);
        sum.addScaled(ex, 1.0);
    }
    EXPECT_LT(fused.maxAbsDiff(sum), 1e-4);
}

TEST(ConvNet, NormShortcutMatchesMaterialized)
{
    Rng rng(5);
    const ConvNet net(smallGeom(), 4, rng);
    const Problem p = makeImages(4, 4, 6);
    ConvNet::Cache cache;
    Tensor dlogits;
    net.lossAndLogitGrad(p.x, p.y, cache, dlogits);
    ConvNetGrads ex = net.zeroGrads();
    for (std::int64_t i = 0; i < 4; ++i) {
        net.perExampleGrad(cache, dlogits, i, ex);
        EXPECT_NEAR(net.perExampleGradNormSq(cache, dlogits, i),
                    ex.l2NormSq(),
                    1e-4 * std::max(1.0, ex.l2NormSq()));
    }
}

TEST(ConvNet, DpEquivalenceWithConvolutions)
{
    // The Lee & Kifer equivalence must hold for conv nets too: the
    // reweighted per-batch gradient equals the sum of clipped
    // per-example gradients.
    Rng rng(7);
    const ConvNet net(smallGeom(), 3, rng);
    const Problem p = makeImages(8, 3, 8);
    ConvNet::Cache cache;
    Tensor dlogits;
    net.lossAndLogitGrad(p.x, p.y, cache, dlogits);

    const double clip = 0.5;
    std::vector<double> weights;
    for (std::int64_t i = 0; i < 8; ++i) {
        const double norm =
            std::sqrt(net.perExampleGradNormSq(cache, dlogits, i));
        weights.push_back(1.0 / std::max(1.0, norm / clip));
    }

    ConvNetGrads fused = net.zeroGrads();
    net.backwardReweighted(cache, dlogits, weights, fused);

    ConvNetGrads manual = net.zeroGrads();
    ConvNetGrads ex = net.zeroGrads();
    for (std::int64_t i = 0; i < 8; ++i) {
        net.perExampleGrad(cache, dlogits, i, ex);
        manual.addScaled(ex, weights[std::size_t(i)]);
    }
    EXPECT_LT(fused.maxAbsDiff(manual), 1e-4);
    // With this clip bound, at least one example must actually clip.
    bool clipped = false;
    for (double w : weights)
        clipped = clipped || w < 1.0;
    EXPECT_TRUE(clipped);
}

TEST(ConvNet, WeightGradMatchesFiniteDifferences)
{
    Rng rng(9);
    ConvNet net(smallGeom(), 3, rng);
    const Problem p = makeImages(4, 3, 10);
    ConvNet::Cache cache;
    Tensor dlogits;
    net.lossAndLogitGrad(p.x, p.y, cache, dlogits);
    ConvNetGrads grads = net.zeroGrads();
    net.backwardReweighted(cache, dlogits,
                           std::vector<double>(4, 1.0), grads);

    auto total_loss = [&]() {
        ConvNet::Cache c;
        Tensor g;
        return net.lossAndLogitGrad(p.x, p.y, c, g) * 4.0;
    };
    const double eps = 1e-3;
    Tensor &w = net.conv().weight();
    for (std::int64_t idx : {std::int64_t(0), w.size() / 2}) {
        const float orig = w[idx];
        w[idx] = float(orig + eps);
        const double fp = total_loss();
        w[idx] = float(orig - eps);
        const double fm = total_loss();
        w[idx] = orig;
        EXPECT_NEAR(grads.convW[idx], (fp - fm) / (2 * eps), 2e-2);
    }
}

TEST(ConvNet, DpTrainingConverges)
{
    Rng rng(11);
    ConvNet net(smallGeom(), 3, rng);
    Rng data_rng(12);
    const ConvGeometry g = smallGeom();
    Dataset data = makeSyntheticClassification(
        512, int(g.inChannels * g.inH * g.inW), 3, data_rng, 4.0);

    // Hand-rolled DP-SGD(R) loop over the ConvNet.
    const double clip = 1.0;
    const double sigma = 0.5;
    const double lr = 0.05;
    Rng noise(13), batch_rng(14);
    Tensor x;
    std::vector<int> y;
    for (int step = 0; step < 80; ++step) {
        sampleBatch(data, 32, batch_rng, x, y);
        ConvNet::Cache cache;
        Tensor dlogits;
        net.lossAndLogitGrad(x, y, cache, dlogits);
        std::vector<double> weights;
        for (std::int64_t i = 0; i < 32; ++i) {
            const double norm = std::sqrt(
                net.perExampleGradNormSq(cache, dlogits, i));
            weights.push_back(1.0 / std::max(1.0, norm / clip));
        }
        ConvNetGrads grads = net.zeroGrads();
        net.backwardReweighted(cache, dlogits, weights, grads);
        for (Tensor *t :
             {&grads.convW, &grads.convB, &grads.fcW, &grads.fcB})
            for (std::int64_t i = 0; i < t->size(); ++i)
                (*t)[i] = float((*t)[i] +
                                noise.gaussian(0.0, sigma * clip));
        grads.scale(1.0 / 32.0);
        net.applyUpdate(grads, lr);
    }
    EXPECT_GT(net.accuracy(data.x, data.y), 0.6);
}

} // namespace
} // namespace diva
