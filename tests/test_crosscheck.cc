/**
 * @file
 * Cross-checks between the analytic (timing) and functional (numeric)
 * halves of the repository: the Figure-6 GEMM shapes that the planner
 * feeds the simulator must be exactly the matrix dimensions the
 * functional layers multiply. If these drift apart, the simulator is
 * timing a different computation than DP-SGD actually performs.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dp/conv2d.h"
#include "dp/linear.h"
#include "gemm/reference_gemm.h"
#include "models/layer.h"

namespace diva
{
namespace
{

TEST(CrossCheck, LinearPerExampleShapeMatchesFunctionalGrad)
{
    // Analytic: per-example wgrad of Linear(I,O) is (I, 1, O).
    const Layer layer = Layer::linear("fc", 24, 10);
    const GemmInstance gi = layer.perExampleWGradGemm(5);
    ASSERT_EQ(gi.shape, GemmShape(24, 1, 10));
    ASSERT_EQ(gi.count, 5u);

    // Functional: dW_i has exactly (M=I) x (N=O) entries and is the
    // product of a (I,1) column by a (1,O) row -- K = 1.
    Rng rng(1);
    Linear lin(24, 10, rng);
    const Tensor x = Tensor::randn(5, 24, rng, 1.0);
    const Tensor gy = Tensor::randn(5, 10, rng, 1.0);
    Tensor dw, db;
    lin.perExampleGrad(x, gy, 2, dw, db);
    EXPECT_EQ(dw.rows(), gi.shape.m);
    EXPECT_EQ(dw.cols(), gi.shape.n);
}

TEST(CrossCheck, LinearPerBatchShapeMatchesFunctionalGrad)
{
    // Analytic: per-batch wgrad is (I, B, O) -- the K dimension is the
    // mini-batch.
    const Layer layer = Layer::linear("fc", 24, 10);
    const GemmInstance gi = layer.perBatchWGradGemm(7);
    ASSERT_EQ(gi.shape, GemmShape(24, 7, 10));

    // Functional: dW = x^T(24x7) * gy(7x10); verify against the
    // reference GEMM with exactly those dimensions.
    Rng rng(2);
    Linear lin(24, 10, rng);
    const Tensor x = Tensor::randn(7, 24, rng, 1.0);
    const Tensor gy = Tensor::randn(7, 10, rng, 1.0);
    Tensor dw, db;
    lin.perBatchGrad(x, gy, dw, db);

    // Rebuild via gemmInnerProduct on the Figure-6 shape.
    std::vector<float> xt(24 * 7);
    for (int i = 0; i < 7; ++i)
        for (int j = 0; j < 24; ++j)
            xt[std::size_t(j * 7 + i)] = x.at(i, j);
    std::vector<float> g(gy.data().begin(), gy.data().end());
    const auto ref = gemmInnerProduct(gi.shape, xt, g);
    for (std::int64_t r = 0; r < dw.rows(); ++r)
        for (std::int64_t c = 0; c < dw.cols(); ++c)
            EXPECT_NEAR(dw.at(r, c),
                        ref[std::size_t(r * dw.cols() + c)], 1e-4);
}

TEST(CrossCheck, ConvPerExampleShapeMatchesFunctionalGrad)
{
    // Analytic conv layer and functional conv with the same geometry.
    const Layer layer = Layer::conv2d("c", 3, 8, 3, 3, 1, 1, 6, 6);
    const GemmInstance gi = layer.perExampleWGradGemm(4);
    // (Cin*R*S, P*Q, Cout) = (27, 36, 8).
    ASSERT_EQ(gi.shape, GemmShape(27, 36, 8));
    ASSERT_EQ(gi.count, 4u);

    ConvGeometry g;
    g.inChannels = 3;
    g.outChannels = 8;
    g.kernelH = g.kernelW = 3;
    g.stride = 1;
    g.padding = 1;
    g.inH = g.inW = 6;
    Rng rng(3);
    const Conv2d conv(g, rng);
    const Tensor x = Tensor::randn(4, 3 * 36, rng, 1.0);
    const Tensor gy = Tensor::randn(4, 8 * 36, rng, 1.0);
    Tensor dw, db;
    conv.perExampleGrad(x, gy, 1, dw, db);
    // dW is the (M x N) output of the Figure-6 GEMM; the im2col patch
    // matrix supplies the K = P*Q dimension.
    EXPECT_EQ(dw.rows(), gi.shape.m);
    EXPECT_EQ(dw.cols(), gi.shape.n);
    EXPECT_EQ(im2col(g, x, 1).rows(), gi.shape.k);
}

TEST(CrossCheck, ConvForwardShapeMatchesIm2colGemm)
{
    const Layer layer = Layer::conv2d("c", 3, 8, 3, 3, 1, 1, 6, 6);
    const GemmInstance fwd = layer.forwardGemm(4);
    // (B*P*Q, Cin*R*S, Cout) = (144, 27, 8).
    ASSERT_EQ(fwd.shape, GemmShape(4 * 36, 27, 8));

    ConvGeometry g;
    g.inChannels = 3;
    g.outChannels = 8;
    g.kernelH = g.kernelW = 3;
    g.stride = 1;
    g.padding = 1;
    g.inH = g.inW = 6;
    Rng rng(4);
    const Tensor x = Tensor::randn(4, 3 * 36, rng, 1.0);
    // Each example contributes a (P*Q x Cin*R*S) patch block; stacked
    // over the batch they form the (B*P*Q x Cin*R*S) LHS.
    const Tensor patches = im2col(g, x, 0);
    EXPECT_EQ(patches.rows() * 4, fwd.shape.m);
    EXPECT_EQ(patches.cols(), fwd.shape.k);
}

TEST(CrossCheck, MacCountsAgreeAcrossDerivations)
{
    // Per-batch and per-example derivations of the same layer do the
    // same number of useful MACs -- the reduction just moves in or out
    // of the GEMM (Section III-C).
    for (int b : {1, 3, 16}) {
        const Layer conv = Layer::conv2d("c", 16, 32, 3, 3, 1, 1, 8, 8);
        EXPECT_EQ(conv.perBatchWGradGemm(b).totalMacs(),
                  conv.perExampleWGradGemm(b).totalMacs());
        const Layer fc = Layer::linear("fc", 100, 50);
        EXPECT_EQ(fc.perBatchWGradGemm(b).totalMacs(),
                  fc.perExampleWGradGemm(b).totalMacs());
        const Layer ts = Layer::timeSeriesLinear("ts", 64, 64, 12);
        EXPECT_EQ(ts.perBatchWGradGemm(b).totalMacs(),
                  ts.perExampleWGradGemm(b).totalMacs());
    }
}

} // namespace
} // namespace diva
