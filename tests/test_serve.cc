/**
 * @file
 * Tests of the time-sharing serve loop and the full serve pipeline:
 * scheduling behavior under constructed iteration costs, context
 * switch accounting, QoS attainment (EDF vs FIFO under overload),
 * duration mode, NaN guards, and byte-determinism of the emitted
 * CSV/JSON across sweep-runner thread counts.
 */

#include <cmath>
#include <limits>
#include <sstream>

#include <gtest/gtest.h>

#include "sim/result.h"
#include "tenant/emit.h"
#include "tenant/serve.h"

namespace diva
{
namespace
{

/** A bounded job with a rate target (0 = no target). */
TenantJob
job(const std::string &name, double arrival, std::uint64_t steps,
    double rate)
{
    TenantJob j;
    j.name = name;
    j.model = "SqueezeNet"; // irrelevant when costs are injected
    j.batch = 8;
    j.arrivalSec = arrival;
    j.steps = steps;
    j.qosStepsPerSec = rate;
    return j;
}

/** A spec over explicit jobs, defaulting to one DiVa chip. */
ServeSpec
spec(std::vector<TenantJob> jobs, SchedPolicy policy)
{
    ServeSpec s;
    s.workload.name = "test";
    s.workload.jobs = std::move(jobs);
    s.config = divaDefault(true);
    s.policy = policy;
    return s;
}

IterationCost
cost(double seconds, double energy)
{
    IterationCost c;
    c.seconds = seconds;
    c.energyJ = energy;
    c.resolvedBatch = 8;
    return c;
}

const SwitchCost kFreeSwitch{};

SwitchCost
switchCost(double seconds, double energy)
{
    SwitchCost c;
    c.seconds = seconds;
    c.energyJ = energy;
    c.dramBytes = 1024;
    return c;
}

TEST(ServeLoop, SingleTenantMatchesIsolatedRun)
{
    const ServeResult r =
        runServeLoop(spec({job("a", 0.0, 10, 0.0)}, SchedPolicy::kFifo),
                     {cost(0.5, 2.0)}, switchCost(0.1, 1.0));
    ASSERT_TRUE(r.ok()) << r.error;
    ASSERT_EQ(r.tenants.size(), 1u);
    const TenantMetrics &t = r.tenants[0];
    EXPECT_EQ(t.stepsDone, 10u);
    EXPECT_TRUE(t.completed);
    EXPECT_EQ(r.contextSwitches, 0u) << "no other tenant to switch to";
    EXPECT_DOUBLE_EQ(r.makespanSec, 5.0);
    EXPECT_DOUBLE_EQ(t.achievedStepsPerSec, 2.0);
    EXPECT_DOUBLE_EQ(t.isolatedStepsPerSec, 2.0);
    EXPECT_DOUBLE_EQ(t.slowdown, 1.0);
    EXPECT_DOUBLE_EQ(t.waitSec, 0.0);
    EXPECT_DOUBLE_EQ(r.totalEnergyJ, 20.0);
    EXPECT_DOUBLE_EQ(t.energyShare, 1.0);
    EXPECT_TRUE(std::isnan(t.qosAttainmentPct)) << "no target set";
}

TEST(ServeLoop, ContextSwitchesCostTimeAndEnergy)
{
    // Two identical tenants under round-robin with quantum 1: every
    // quantum boundary alternates tenants, so with 2x5 steps there are
    // 9 switches (the cold start is free).
    const auto mk = [](const SwitchCost &sw) {
        return runServeLoop(
            spec({job("a", 0.0, 5, 0.0), job("b", 0.0, 5, 0.0)},
                 SchedPolicy::kRoundRobin),
            {cost(1.0, 1.0), cost(1.0, 1.0)}, sw);
    };
    const ServeResult free_sw = mk(kFreeSwitch);
    const ServeResult paid = mk(switchCost(0.5, 2.0));
    ASSERT_TRUE(free_sw.ok()) << free_sw.error;
    ASSERT_TRUE(paid.ok()) << paid.error;

    EXPECT_EQ(free_sw.contextSwitches, 9u);
    EXPECT_EQ(paid.contextSwitches, 9u);
    EXPECT_DOUBLE_EQ(free_sw.makespanSec, 10.0);
    EXPECT_DOUBLE_EQ(paid.makespanSec, 10.0 + 9 * 0.5);
    EXPECT_DOUBLE_EQ(paid.switchSec, 4.5);
    EXPECT_DOUBLE_EQ(paid.switchEnergyJ, 18.0);
    EXPECT_EQ(paid.switchDramBytes, 9u * 1024u);
    // Switch joules land in the tenants' bills and the total.
    EXPECT_DOUBLE_EQ(paid.totalEnergyJ, 10.0 + 18.0);
    EXPECT_DOUBLE_EQ(paid.tenants[0].energyJ + paid.tenants[1].energyJ,
                     paid.totalEnergyJ);
    // A larger quantum amortizes switches.
    ServeSpec q4 = spec({job("a", 0.0, 5, 0.0), job("b", 0.0, 5, 0.0)},
                        SchedPolicy::kRoundRobin);
    q4.opts.quantumIters = 4;
    const ServeResult amortized = runServeLoop(
        q4, {cost(1.0, 1.0), cost(1.0, 1.0)}, switchCost(0.5, 2.0));
    ASSERT_TRUE(amortized.ok()) << amortized.error;
    EXPECT_LT(amortized.contextSwitches, paid.contextSwitches);
}

TEST(ServeLoop, EdfBeatsFifoOnQosAttainmentUnderOverload)
{
    // Constructed overload: both tenants arrive at t=0 wanting more
    // than the machine can give (1 step/s capacity, 1.05 steps/s of
    // demand). Tenant "loose" has slack (deadline every 20 s); tenant
    // "tight" needs a step per second. FIFO serializes by arrival and
    // starves "tight"; EDF serves the urgent deadlines first and meets
    // both schedules.
    const std::vector<TenantJob> mix = {
        job("loose", 0.0, 10, 0.05), job("tight", 0.0, 10, 1.0)};
    const std::vector<IterationCost> costs = {cost(1.0, 1.0),
                                              cost(1.0, 1.0)};
    const ServeResult fifo = runServeLoop(
        spec(mix, SchedPolicy::kFifo), costs, kFreeSwitch);
    const ServeResult edf =
        runServeLoop(spec(mix, SchedPolicy::kEdf), costs, kFreeSwitch);
    ASSERT_TRUE(fifo.ok()) << fifo.error;
    ASSERT_TRUE(edf.ok()) << edf.error;

    // FIFO: "loose" runs t=1..10 (all deadlines met), "tight" runs
    // t=11..20 missing every 1-second deadline.
    EXPECT_DOUBLE_EQ(fifo.tenants[1].qosAttainmentPct, 0.0);
    // EDF: "tight" runs first (deadlines 1..10 met), then "loose"
    // finishes t=11..20, still inside its 20 s/step schedule.
    EXPECT_DOUBLE_EQ(edf.tenants[0].qosAttainmentPct, 100.0);
    EXPECT_DOUBLE_EQ(edf.tenants[1].qosAttainmentPct, 100.0);
    EXPECT_GT(edf.meanQosAttainmentPct, fifo.meanQosAttainmentPct);
}

TEST(ServeLoop, DurationModeCountsStepsInsideWall)
{
    // Unbounded steps under a 10 s wall: a 1 s/step tenant alone
    // completes exactly 10 steps, never more.
    ServeSpec s = spec({job("a", 0.0, 0, 0.0)}, SchedPolicy::kFifo);
    s.opts.wallLimitSec = 10.0;
    const ServeResult r =
        runServeLoop(s, {cost(1.0, 1.0)}, kFreeSwitch);
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.tenants[0].stepsDone, 10u);
    EXPECT_FALSE(r.tenants[0].completed);
    EXPECT_LE(r.makespanSec, 10.0 + 1e-9);

    // A step that would cross the wall does not run: 3 s steps in a
    // 10 s budget yield 3 steps, not 4.
    const ServeResult partial =
        runServeLoop(s, {cost(3.0, 1.0)}, kFreeSwitch);
    ASSERT_TRUE(partial.ok()) << partial.error;
    EXPECT_EQ(partial.tenants[0].stepsDone, 3u);

    // Unbounded steps without a wall are rejected, not spun forever.
    ServeSpec bad = spec({job("a", 0.0, 0, 0.0)}, SchedPolicy::kFifo);
    const ServeResult err =
        runServeLoop(bad, {cost(1.0, 1.0)}, kFreeSwitch);
    EXPECT_FALSE(err.ok());
}

TEST(ServeLoop, WallBoundsIdleJumpsAndSwitchBilling)
{
    // An arrival far beyond the wall must not drag `now` (and with it
    // makespan and rate windows) past the budget.
    ServeSpec late = spec({job("late", 5.0, 4, 0.0)}, SchedPolicy::kFifo);
    late.opts.wallLimitSec = 0.001;
    const ServeResult idle =
        runServeLoop(late, {cost(1.0, 1.0)}, kFreeSwitch);
    ASSERT_TRUE(idle.ok()) << idle.error;
    EXPECT_EQ(idle.tenants[0].stepsDone, 0u);
    EXPECT_LE(idle.makespanSec, 0.001 + 1e-9);

    // A context switch whose delay pushes the next step past the wall
    // is never billed: "a" fills t=0..8, and b's switch (1.5) plus
    // step (2.0) cannot fit in the remaining 2 s.
    ServeSpec s = spec({job("a", 0.0, 4, 0.0), job("b", 0.0, 1, 0.0)},
                       SchedPolicy::kFifo);
    s.opts.wallLimitSec = 10.0;
    const ServeResult r = runServeLoop(
        s, {cost(2.0, 1.0), cost(2.0, 1.0)}, switchCost(1.5, 2.0));
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.tenants[0].stepsDone, 4u);
    EXPECT_EQ(r.tenants[1].stepsDone, 0u);
    EXPECT_EQ(r.contextSwitches, 0u);
    EXPECT_DOUBLE_EQ(r.switchEnergyJ, 0.0);
    EXPECT_DOUBLE_EQ(r.makespanSec, 8.0);
}

TEST(ServeLoop, LateArrivalWaitsAndIdleTimeIsSkipped)
{
    // "b" arrives at t=100 while "a" finishes at t=2: the loop jumps
    // over the idle gap and "b" starts exactly at its arrival.
    const ServeResult r = runServeLoop(
        spec({job("a", 0.0, 2, 0.0), job("b", 100.0, 2, 0.0)},
             SchedPolicy::kFifo),
        {cost(1.0, 1.0), cost(1.0, 1.0)}, switchCost(0.25, 1.0));
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_DOUBLE_EQ(r.tenants[0].endSec, 2.0);
    EXPECT_DOUBLE_EQ(r.tenants[1].waitSec, 0.25)
        << "only the context switch delays the late arrival";
    EXPECT_DOUBLE_EQ(r.makespanSec, 102.25);
}

TEST(ServeLoop, PriorityPreemptsOnArrival)
{
    // A high-priority tenant arriving mid-run takes the engine at the
    // next quantum boundary even with a large quantum: arrivals are
    // preemption points.
    std::vector<TenantJob> mix = {job("low", 0.0, 10, 0.0),
                                  job("high", 2.5, 2, 0.0)};
    mix[0].priority = 0;
    mix[1].priority = 9;
    ServeSpec s = spec(mix, SchedPolicy::kPriority);
    s.opts.quantumIters = 100;
    const ServeResult r = runServeLoop(
        s, {cost(1.0, 1.0), cost(1.0, 1.0)}, kFreeSwitch);
    ASSERT_TRUE(r.ok()) << r.error;
    // "high" arrives during low's third step (2..3) and runs 3..5.
    EXPECT_DOUBLE_EQ(r.tenants[1].endSec, 5.0);
    EXPECT_TRUE(r.tenants[1].completed);
    EXPECT_DOUBLE_EQ(r.tenants[0].endSec, 12.0);
}

TEST(ServeLoop, SlowdownGuardsAreNaNNotInf)
{
    // "starved" arrives exactly at the wall: zero steps, zero window.
    ServeSpec s = spec({job("a", 0.0, 0, 0.0),
                        job("starved", 10.0, 5, 0.0)},
                       SchedPolicy::kFifo);
    s.opts.wallLimitSec = 10.0;
    const ServeResult r = runServeLoop(
        s, {cost(1.0, 1.0), cost(1.0, 1.0)}, kFreeSwitch);
    ASSERT_TRUE(r.ok()) << r.error;
    const TenantMetrics &starved = r.tenants[1];
    EXPECT_EQ(starved.stepsDone, 0u);
    EXPECT_TRUE(std::isnan(starved.slowdown));
    EXPECT_TRUE(std::isnan(starved.waitSec));
    EXPECT_FALSE(std::isinf(starved.achievedStepsPerSec));

    // The emitters must render those NaNs as "nan" / null, never inf.
    std::ostringstream csv;
    writeServeCsv(csv, {r});
    EXPECT_EQ(csv.str().find("inf"), std::string::npos);
    std::ostringstream json;
    writeServeJson(json, {r});
    EXPECT_EQ(json.str().find("inf"), std::string::npos);
    EXPECT_NE(json.str().find("null"), std::string::npos);
}

TEST(ServeLoop, RejectsBadSpecs)
{
    const std::vector<IterationCost> one = {cost(1.0, 1.0)};
    ServeSpec s = spec({job("a", 0.0, 5, 0.0)}, SchedPolicy::kFifo);

    ServeSpec bad = s;
    bad.opts.quantumIters = 0;
    EXPECT_FALSE(runServeLoop(bad, one, kFreeSwitch).ok());

    bad = s;
    bad.chips = 0;
    EXPECT_FALSE(runServeLoop(bad, one, kFreeSwitch).ok());

    bad = s;
    EXPECT_FALSE(runServeLoop(bad, {}, kFreeSwitch).ok())
        << "cost count mismatch";

    EXPECT_FALSE(
        runServeLoop(s, {cost(0.0, 1.0)}, kFreeSwitch).ok())
        << "zero-second iteration";

    bad = s;
    bad.workload.jobs.clear();
    EXPECT_FALSE(runServeLoop(bad, {}, kFreeSwitch).ok());
}

TEST(Speedup, GuardsZeroDenominator)
{
    SimResult some;
    some.stageCycles[0] = 100;
    SimResult zero;
    EXPECT_TRUE(std::isnan(speedup(some, zero)));
    EXPECT_DOUBLE_EQ(speedup(some, some), 1.0);
}

TEST(ServePipeline, DeterministicAcrossRunnerThreads)
{
    // The full pipeline (real Executor-backed costs) must emit
    // byte-identical CSV and JSON whatever the runner thread count,
    // and re-serving under another policy must hit the cache.
    ServeSpec s;
    s.workload = defaultWorkload(4, 6, 8, 0.001);
    s.config = divaDefault(true);
    s.policy = SchedPolicy::kEdf;
    s.opts.autoQosFairShare = true;

    auto emit = [&](int threads) {
        SweepOptions opts;
        opts.threads = threads;
        SweepRunner runner(opts);
        std::vector<ServeResult> serves;
        for (SchedPolicy p : allPolicies()) {
            s.policy = p;
            serves.push_back(simulateServe(s, runner));
            EXPECT_TRUE(serves.back().ok()) << serves.back().error;
        }
        std::ostringstream csv, json;
        writeServeCsv(csv, serves);
        writeServeJson(json, serves);
        return csv.str() + "\n===\n" + json.str();
    };
    const std::string serial = emit(1);
    const std::string parallel = emit(4);
    EXPECT_EQ(serial, parallel);
    EXPECT_NE(serial.find("edf"), std::string::npos);
}

TEST(ServePipeline, SharesTheSweepScenarioCache)
{
    ServeSpec s;
    s.workload = defaultWorkload(3, 4, 8, 0.0);
    s.config = divaDefault(true);
    SweepRunner runner;
    ASSERT_TRUE(simulateServe(s, runner).ok());
    const std::size_t cached = runner.cacheSize();
    EXPECT_EQ(cached, 3u) << "one scenario per tenant";
    // A different policy re-uses every isolated-cost scenario.
    s.policy = SchedPolicy::kFifo;
    ASSERT_TRUE(simulateServe(s, runner).ok());
    EXPECT_EQ(runner.cacheSize(), cached);
}

TEST(ServePipeline, SurfacesScenarioErrors)
{
    ServeSpec s;
    s.workload = defaultWorkload(1, 4, 8, 0.0);
    s.workload.jobs[0].model = "NoSuchNet";
    EXPECT_FALSE(simulateServe(s).ok());

    ServeSpec bad_cfg;
    bad_cfg.workload = defaultWorkload(1, 4, 8, 0.0);
    bad_cfg.config = divaDefault(true);
    bad_cfg.config.peRows = -1;
    EXPECT_FALSE(simulateServe(bad_cfg).ok());
}

} // namespace
} // namespace diva
