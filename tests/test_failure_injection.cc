/**
 * @file
 * Failure-injection tests: every user-facing entry point must reject
 * invalid inputs with a clear error rather than corrupting state or
 * producing silent nonsense. Collected in one suite so the error
 * surface of the public API is auditable.
 */

#include <gtest/gtest.h>

#include "arch/accelerator_config.h"
#include "dp/accountant.h"
#include "dp/conv2d.h"
#include "dp/dp_sgd.h"
#include "dp/ops.h"
#include "gemm/engine.h"
#include "gpu/gpu_model.h"
#include "models/zoo.h"
#include "sim/executor.h"
#include "sim/multichip.h"
#include "train/memory_model.h"
#include "train/planner.h"
#include "train/schedule.h"

namespace diva
{
namespace
{

TEST(FailureInjection, ConfigGeometry)
{
    AcceleratorConfig cfg = divaDefault();
    cfg.peCols = -1;
    EXPECT_THROW(cfg.validate(), std::runtime_error);
    cfg = divaDefault();
    cfg.freqGhz = 0.0;
    EXPECT_THROW(cfg.validate(), std::runtime_error);
    cfg = divaDefault();
    cfg.inputBytes = 0;
    EXPECT_THROW(cfg.validate(), std::runtime_error);
    cfg = divaDefault();
    cfg.weightFillRowsPerCycle = -8;
    EXPECT_THROW(cfg.validate(), std::runtime_error);
}

TEST(FailureInjection, EngineConstructionValidates)
{
    // The engine factory must refuse invalid configs at construction,
    // not at first use.
    AcceleratorConfig cfg = divaDefault();
    cfg.sramBytes = 0;
    EXPECT_THROW(GemmEngineModel::create(cfg), std::runtime_error);
}

TEST(FailureInjection, EngineDataflowMismatch)
{
    // Constructing a concrete engine with the wrong dataflow is an
    // internal contract violation.
    EXPECT_THROW(Executor([] {
                     AcceleratorConfig c = tpuV3Ws();
                     c.hasPpu = true; // WS + PPU forbidden
                     return c;
                 }()),
                 std::runtime_error);
}

TEST(FailureInjection, GemmShapes)
{
    const auto engine = GemmEngineModel::create(divaDefault());
    EXPECT_THROW(engine->simulate(GemmShape(1, 0, 1)),
                 std::logic_error);
    EXPECT_THROW(engine->simulate(GemmShape(-4, 4, 4)),
                 std::logic_error);
}

TEST(FailureInjection, PlannerInputs)
{
    EXPECT_THROW(buildOpStream(resnet50(), TrainingAlgorithm::kSgd, -1),
                 std::logic_error);
    EXPECT_THROW(buildMicrobatchedOpStream(
                     resnet50(), TrainingAlgorithm::kDpSgd, 16, 32),
                 std::logic_error);
}

TEST(FailureInjection, MemoryModelInputs)
{
    EXPECT_THROW(trainingMemory(resnet50(), TrainingAlgorithm::kSgd, 0),
                 std::logic_error);
    EXPECT_THROW(trainingMemoryMicrobatched(
                     resnet50(), TrainingAlgorithm::kDpSgd, 4, 8),
                 std::logic_error);
}

TEST(FailureInjection, ScheduleInputs)
{
    TrainingRunConfig run;
    run.datasetSize = 0;
    EXPECT_THROW(projectTrainingRun(divaDefault(true), resnet50(),
                                    TrainingAlgorithm::kDpSgd, run),
                 std::logic_error);
}

TEST(FailureInjection, MultiChipInputs)
{
    MultiChipConfig pod;
    pod.numChips = 4;
    EXPECT_THROW(simulateDataParallel(divaDefault(true), resnet50(),
                                      TrainingAlgorithm::kDpSgd, 2,
                                      pod),
                 std::runtime_error);
}

TEST(FailureInjection, GpuModelInputs)
{
    GpuConfig bad = GpuConfig::v100Fp32();
    bad.numSms = 0;
    EXPECT_THROW(GpuModel{bad}, std::logic_error);
}

TEST(FailureInjection, AccountantInputs)
{
    EXPECT_THROW(RdpAccountant(-1.0, 0.5), std::logic_error);
    RdpAccountant acc(1.0, 0.1);
    EXPECT_THROW(acc.addSteps(-5), std::logic_error);
    EXPECT_THROW(
        RdpAccountant::calibrateNoiseMultiplier(0.0, 1e-5, 0.1, 100),
        std::logic_error);
}

TEST(FailureInjection, DpTrainerInputs)
{
    Rng rng(1);
    Mlp model({4, 2}, rng);
    DpSgdConfig cfg;
    cfg.noiseMultiplier = -1.0;
    EXPECT_THROW(DpSgdTrainer(model, cfg), std::logic_error);
}

TEST(FailureInjection, NumericOpsShapeChecks)
{
    Tensor a(2, 3), b(4, 5);
    EXPECT_THROW(matmul(a, b), std::logic_error);
    EXPECT_THROW(matmulTransA(a, b), std::logic_error);
    EXPECT_THROW(matmulTransB(a, b), std::logic_error);
    EXPECT_THROW(reluBackward(a, b), std::logic_error);
}

TEST(FailureInjection, ConvGeometryCollapse)
{
    ConvGeometry g;
    g.inChannels = g.outChannels = 1;
    g.kernelH = g.kernelW = 7;
    g.stride = 1;
    g.padding = 0;
    g.inH = g.inW = 4; // 7x7 kernel cannot fit
    Rng rng(2);
    EXPECT_THROW(Conv2d(g, rng).forward(Tensor(1, 16)),
                 std::logic_error);
}

} // namespace
} // namespace diva
