/**
 * @file
 * Unit tests for the layer descriptors and the Figure-6 GEMM algebra.
 */

#include <gtest/gtest.h>

#include "models/layer.h"

namespace diva
{
namespace
{

TEST(LinearLayer, Figure6Shapes)
{
    const Layer l = Layer::linear("fc", 512, 256);
    const int b = 64;
    // Forward: (B, I, O).
    EXPECT_EQ(l.forwardGemm(b).shape, GemmShape(64, 512, 256));
    EXPECT_EQ(l.forwardGemm(b).count, 1u);
    // Activation grad: (B, O, I).
    EXPECT_EQ(l.actGradGemm(b).shape, GemmShape(64, 256, 512));
    // Per-batch wgrad: (I, B, O) -- K carries the batch.
    EXPECT_EQ(l.perBatchWGradGemm(b).shape, GemmShape(512, 64, 256));
    // Per-example wgrad: B GEMMs of (I, 1, O).
    const GemmInstance pe = l.perExampleWGradGemm(b);
    EXPECT_EQ(pe.shape, GemmShape(512, 1, 256));
    EXPECT_EQ(pe.count, 64u);
}

TEST(LinearLayer, ParamsAndActivations)
{
    const Layer l = Layer::linear("fc", 512, 256);
    EXPECT_EQ(l.paramCount(), 512 * 256 + 256);
    EXPECT_EQ(l.outputElemsPerExample(), 256u);
    EXPECT_TRUE(l.hasWeights());
}

TEST(ConvLayer, SpatialDims)
{
    const Layer l = Layer::conv2d("c", 3, 64, 3, 3, 1, 1, 32, 32);
    EXPECT_EQ(l.outH(), 32);
    EXPECT_EQ(l.outW(), 32);
    const Layer s2 = Layer::conv2d("c", 3, 64, 7, 7, 2, 3, 32, 32);
    EXPECT_EQ(s2.outH(), 16);
    EXPECT_EQ(s2.outW(), 16);
}

TEST(ConvLayer, Figure6Shapes)
{
    // Cin=64, Cout=128, 3x3, 16x16 -> P=Q=16, CRS=576, PQ=256.
    const Layer l = Layer::conv2d("c", 64, 128, 3, 3, 1, 1, 16, 16);
    const int b = 32;
    EXPECT_EQ(l.forwardGemm(b).shape,
              GemmShape(32 * 256, 576, 128));
    EXPECT_EQ(l.actGradGemm(b).shape, GemmShape(32 * 256, 128, 576));
    EXPECT_EQ(l.perBatchWGradGemm(b).shape,
              GemmShape(576, 32 * 256, 128));
    const GemmInstance pe = l.perExampleWGradGemm(b);
    EXPECT_EQ(pe.shape, GemmShape(576, 256, 128));
    EXPECT_EQ(pe.count, 32u);
}

TEST(ConvLayer, PerExampleKIndependentOfBatch)
{
    const Layer l = Layer::conv2d("c", 64, 128, 3, 3, 1, 1, 16, 16);
    EXPECT_EQ(l.perExampleWGradGemm(8).shape,
              l.perExampleWGradGemm(512).shape);
    EXPECT_EQ(l.perExampleWGradGemm(512).count, 512u);
}

TEST(ConvLayer, PerBatchMacsEqualPerExampleMacs)
{
    // Both derivations perform the same useful work; they only differ
    // in GEMM shape (reduction inside vs outside the GEMM).
    const Layer l = Layer::conv2d("c", 32, 64, 3, 3, 1, 1, 8, 8);
    for (int b : {1, 4, 128}) {
        EXPECT_EQ(l.perBatchWGradGemm(b).totalMacs(),
                  l.perExampleWGradGemm(b).totalMacs())
            << "batch " << b;
    }
}

TEST(ConvLayer, ParamCount)
{
    const Layer l = Layer::conv2d("c", 64, 128, 3, 3, 1, 1, 16, 16);
    EXPECT_EQ(l.paramCount(), 64 * 128 * 9 + 128);
}

TEST(DepthwiseConv, PerChannelGemms)
{
    const Layer l =
        Layer::depthwiseConv2d("dw", 256, 3, 3, 1, 1, 8, 8);
    const int b = 16;
    const GemmInstance fwd = l.forwardGemm(b);
    // One (B*P*Q, R*S, 1) GEMM per channel.
    EXPECT_EQ(fwd.shape, GemmShape(16 * 64, 9, 1));
    EXPECT_EQ(fwd.count, 256u);
    const GemmInstance pe = l.perExampleWGradGemm(b);
    EXPECT_EQ(pe.shape, GemmShape(9, 64, 1));
    EXPECT_EQ(pe.count, 16u * 256u);
    EXPECT_EQ(l.paramCount(), 256 * 9 + 256);
}

TEST(TimeSeriesLinear, BatchedShapes)
{
    const Layer l = Layer::timeSeriesLinear("proj", 768, 768, 32);
    const int b = 8;
    // Forward batches tokens: (B*L, I, O).
    EXPECT_EQ(l.forwardGemm(b).shape, GemmShape(8 * 32, 768, 768));
    EXPECT_EQ(l.forwardGemm(b).count, 1u);
    // Per-example: (I, L, O) x B -- K = L, independent of batch.
    const GemmInstance pe = l.perExampleWGradGemm(b);
    EXPECT_EQ(pe.shape, GemmShape(768, 32, 768));
    EXPECT_EQ(pe.count, 8u);
    EXPECT_EQ(l.outputElemsPerExample(), 768u * 32u);
}

TEST(TimeSeriesLinear, SequentialEmitsPerTimestepGemms)
{
    const Layer l =
        Layer::timeSeriesLinear("hh", 256, 1024, 32, true);
    const GemmInstance fwd = l.forwardGemm(8);
    EXPECT_EQ(fwd.shape, GemmShape(8, 256, 1024));
    EXPECT_EQ(fwd.count, 32u);
    // Per-batch wgrad can still accumulate over time: (I, B*L, O).
    EXPECT_EQ(l.perBatchWGradGemm(8).shape,
              GemmShape(256, 8 * 32, 1024));
}

TEST(AttentionMatmul, ShapesAndNoWeights)
{
    const Layer scores = Layer::attentionScores("s", 12, 64, 32);
    const Layer context = Layer::attentionContext("c", 12, 64, 32);
    const int b = 4;
    // scores: (L, d, L) per example per head.
    EXPECT_EQ(scores.forwardGemm(b).shape, GemmShape(32, 64, 32));
    EXPECT_EQ(scores.forwardGemm(b).count, 4u * 12u);
    // context: (L, L, d).
    EXPECT_EQ(context.forwardGemm(b).shape, GemmShape(32, 32, 64));
    // Two activation-grad matmuls per forward matmul.
    EXPECT_EQ(scores.actGradGemm(b).count, 2u * 4u * 12u);
    // No weights, hence no weight-gradient GEMMs.
    EXPECT_FALSE(scores.hasWeights());
    EXPECT_EQ(scores.paramCount(), 0);
    EXPECT_EQ(scores.perBatchWGradGemm(b).count, 0u);
    EXPECT_EQ(scores.perExampleWGradGemm(b).count, 0u);
}

TEST(PoolLayer, NoGemmsButActivations)
{
    const Layer p = Layer::pool("pool", 64, 2, 2, 2, 16, 16);
    EXPECT_FALSE(p.hasWeights());
    EXPECT_EQ(p.paramCount(), 0);
    EXPECT_EQ(p.outH(), 8);
    EXPECT_EQ(p.outputElemsPerExample(), 64u * 8 * 8);
    EXPECT_EQ(p.forwardGemm(8).count, 0u);
    EXPECT_EQ(p.actGradGemm(8).count, 0u);
}

TEST(ConvLayer, RejectsSpatialCollapse)
{
    EXPECT_THROW(Layer::conv2d("bad", 3, 8, 7, 7, 1, 0, 4, 4),
                 std::logic_error);
}

} // namespace
} // namespace diva
