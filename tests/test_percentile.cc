/**
 * @file
 * Edge-case tests of the exact-sort percentile helpers backing the
 * tail-latency reports: empty and single-sample sets, all-identical
 * samples, NaN exclusion, and the nearest-rank definition on sets
 * where interpolation would invent values that never occurred.
 */

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/percentile.h"

namespace diva
{
namespace
{

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

TEST(Percentile, EmptySetYieldsNaNStatsAndZeroCount)
{
    const LatencyStats s = computeLatencyStats({});
    EXPECT_EQ(s.count, 0u);
    EXPECT_TRUE(std::isnan(s.meanSec));
    EXPECT_TRUE(std::isnan(s.p50Sec));
    EXPECT_TRUE(std::isnan(s.p95Sec));
    EXPECT_TRUE(std::isnan(s.p99Sec));
    EXPECT_TRUE(std::isnan(s.maxSec));
    EXPECT_TRUE(std::isnan(percentileSorted({}, 50.0)));
}

TEST(Percentile, SingleSampleIsEveryPercentile)
{
    const LatencyStats s = computeLatencyStats({0.25});
    EXPECT_EQ(s.count, 1u);
    EXPECT_DOUBLE_EQ(s.meanSec, 0.25);
    EXPECT_DOUBLE_EQ(s.p50Sec, 0.25);
    EXPECT_DOUBLE_EQ(s.p95Sec, 0.25);
    EXPECT_DOUBLE_EQ(s.p99Sec, 0.25);
    EXPECT_DOUBLE_EQ(s.maxSec, 0.25);
}

TEST(Percentile, AllIdenticalSamplesCollapse)
{
    const LatencyStats s =
        computeLatencyStats(std::vector<double>(1000, 3.5));
    EXPECT_EQ(s.count, 1000u);
    EXPECT_DOUBLE_EQ(s.meanSec, 3.5);
    EXPECT_DOUBLE_EQ(s.p50Sec, 3.5);
    EXPECT_DOUBLE_EQ(s.p99Sec, 3.5);
    EXPECT_DOUBLE_EQ(s.maxSec, 3.5);
}

TEST(Percentile, NaNSamplesAreExcludedNotPropagated)
{
    const LatencyStats s =
        computeLatencyStats({kNaN, 1.0, kNaN, 3.0, kNaN});
    EXPECT_EQ(s.count, 2u) << "only the finite samples count";
    EXPECT_DOUBLE_EQ(s.meanSec, 2.0);
    EXPECT_DOUBLE_EQ(s.p50Sec, 1.0);
    EXPECT_DOUBLE_EQ(s.maxSec, 3.0);

    // An all-NaN set behaves like an empty one.
    const LatencyStats none = computeLatencyStats({kNaN, kNaN});
    EXPECT_EQ(none.count, 0u);
    EXPECT_TRUE(std::isnan(none.p99Sec));
}

TEST(Percentile, NearestRankNeverInterpolates)
{
    // 1..100: pK is exactly the Kth value, and every percentile is a
    // sample that actually occurred.
    std::vector<double> v;
    for (int i = 1; i <= 100; ++i)
        v.push_back(double(i));
    EXPECT_DOUBLE_EQ(percentileSorted(v, 50.0), 50.0);
    EXPECT_DOUBLE_EQ(percentileSorted(v, 95.0), 95.0);
    EXPECT_DOUBLE_EQ(percentileSorted(v, 99.0), 99.0);
    EXPECT_DOUBLE_EQ(percentileSorted(v, 100.0), 100.0);
    EXPECT_DOUBLE_EQ(percentileSorted(v, 0.0), 1.0);

    // Two samples: the median is the lower one (rank ceil(1) = 1),
    // not the midpoint.
    EXPECT_DOUBLE_EQ(percentileSorted({1.0, 9.0}, 50.0), 1.0);
    EXPECT_DOUBLE_EQ(percentileSorted({1.0, 9.0}, 51.0), 9.0);

    // Out-of-range p clamps instead of indexing out of bounds.
    EXPECT_DOUBLE_EQ(percentileSorted({1.0, 9.0}, -5.0), 1.0);
    EXPECT_DOUBLE_EQ(percentileSorted({1.0, 9.0}, 250.0), 9.0);
}

TEST(Percentile, SelectionMatchesSortReferenceBitIdentically)
{
    // The nth_element-based computeLatencyStats must select exactly
    // the elements a full sort would index: cross-check count, every
    // percentile and the max against a sort-based reference over
    // deterministic pseudo-random sample sets of awkward sizes
    // (including rank collisions at n < 20 and duplicate-heavy sets).
    std::uint64_t lcg = 0x2545f4914f6cdd1dULL;
    auto next = [&lcg]() {
        lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
        return double(lcg >> 16) / double(1ULL << 48);
    };
    for (std::size_t n :
         {1u, 2u, 3u, 7u, 19u, 20u, 21u, 99u, 100u, 101u, 1000u}) {
        std::vector<double> samples;
        samples.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            const double v = next();
            // Quantize every third sample to force duplicates.
            samples.push_back(i % 3 == 0 ? std::floor(v * 8.0) / 8.0
                                         : v);
        }

        std::vector<double> sorted = samples;
        std::sort(sorted.begin(), sorted.end());
        const LatencyStats s = computeLatencyStats(samples);
        EXPECT_EQ(s.count, n);
        EXPECT_EQ(s.p50Sec, percentileSorted(sorted, 50.0)) << "n=" << n;
        EXPECT_EQ(s.p95Sec, percentileSorted(sorted, 95.0)) << "n=" << n;
        EXPECT_EQ(s.p99Sec, percentileSorted(sorted, 99.0)) << "n=" << n;
        EXPECT_EQ(s.maxSec, sorted.back()) << "n=" << n;

        // The sorted-mean variant is the old sort-based path: its
        // percentiles must agree bit-for-bit, and its mean must equal
        // an ascending-order accumulation exactly.
        const LatencyStats agg = computeLatencyStatsSortedMean(samples);
        EXPECT_EQ(agg.p50Sec, s.p50Sec);
        EXPECT_EQ(agg.p95Sec, s.p95Sec);
        EXPECT_EQ(agg.p99Sec, s.p99Sec);
        EXPECT_EQ(agg.maxSec, s.maxSec);
        double sum = 0.0;
        for (double v : sorted)
            sum += v;
        EXPECT_EQ(agg.meanSec, sum / double(n)) << "n=" << n;
    }
}

TEST(Percentile, CensusPathMatchesSortReferenceBitIdentically)
{
    // Large strictly-positive duplicate-heavy sets take the
    // distinct-value census path (rank lookups over per-value counts
    // instead of selection / radix sort).  Its stats must match the
    // sort reference bit-for-bit, and the sorted-mean variant's mean
    // must equal an ascending-order accumulation exactly -- the census
    // replays that exact addition sequence per distinct value.
    std::uint64_t lcg = 0x9e3779b97f4a7c15ULL;
    auto next = [&lcg]() {
        lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
        return lcg >> 33;
    };
    for (std::size_t n : {4096u, 5000u, 20000u}) {
        // A pool of ~64 distinct positive values, wildly duplicated --
        // the shape fleet latency aggregation actually sees.
        std::vector<double> pool;
        for (int i = 0; i < 64; ++i)
            pool.push_back(0.001 + double(next() % 10000) / 1000.0);
        std::vector<double> samples;
        samples.reserve(n);
        for (std::size_t i = 0; i < n; ++i)
            samples.push_back(pool[next() % pool.size()]);

        std::vector<double> sorted = samples;
        std::sort(sorted.begin(), sorted.end());
        const LatencyStats s = computeLatencyStats(samples);
        EXPECT_EQ(s.count, n);
        EXPECT_EQ(s.p50Sec, percentileSorted(sorted, 50.0)) << "n=" << n;
        EXPECT_EQ(s.p95Sec, percentileSorted(sorted, 95.0)) << "n=" << n;
        EXPECT_EQ(s.p99Sec, percentileSorted(sorted, 99.0)) << "n=" << n;
        EXPECT_EQ(s.maxSec, sorted.back()) << "n=" << n;

        const LatencyStats agg = computeLatencyStatsSortedMean(samples);
        EXPECT_EQ(agg.p50Sec, s.p50Sec);
        EXPECT_EQ(agg.p95Sec, s.p95Sec);
        EXPECT_EQ(agg.p99Sec, s.p99Sec);
        EXPECT_EQ(agg.maxSec, s.maxSec);
        double sum = 0.0;
        for (double v : sorted)
            sum += v;
        EXPECT_EQ(agg.meanSec, sum / double(n)) << "n=" << n;
    }

    // A single non-positive sample disqualifies the census (positive
    // doubles order by raw bits; zero and negatives do not), so the
    // fallback must kick in and still match the sort reference.
    std::vector<double> mixed(4096, 2.5);
    for (std::size_t i = 0; i < mixed.size(); ++i)
        mixed[i] = 0.5 + double(i % 97) / 97.0;
    mixed[1234] = 0.0;
    std::vector<double> sortedMixed = mixed;
    std::sort(sortedMixed.begin(), sortedMixed.end());
    const LatencyStats m = computeLatencyStats(mixed);
    EXPECT_EQ(m.p50Sec, percentileSorted(sortedMixed, 50.0));
    EXPECT_EQ(m.p99Sec, percentileSorted(sortedMixed, 99.0));
    EXPECT_EQ(m.maxSec, sortedMixed.back());
    const LatencyStats ma = computeLatencyStatsSortedMean(mixed);
    EXPECT_EQ(ma.p50Sec, m.p50Sec);
    double msum = 0.0;
    for (double v : sortedMixed)
        msum += v;
    EXPECT_EQ(ma.meanSec, msum / double(mixed.size()));
}

TEST(Percentile, StatsAreOrderedAndSorted)
{
    // Unsorted input with a heavy tail: p50 <= p95 <= p99 <= max.
    const LatencyStats s = computeLatencyStats(
        {0.9, 0.1, 5.0, 0.2, 0.3, 0.15, 0.25, 0.35, 0.12, 0.18});
    EXPECT_EQ(s.count, 10u);
    EXPECT_LE(s.p50Sec, s.p95Sec);
    EXPECT_LE(s.p95Sec, s.p99Sec);
    EXPECT_LE(s.p99Sec, s.maxSec);
    EXPECT_DOUBLE_EQ(s.maxSec, 5.0);
    EXPECT_DOUBLE_EQ(s.p99Sec, 5.0) << "nearest rank on 10 samples";
}

} // namespace
} // namespace diva
