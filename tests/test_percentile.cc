/**
 * @file
 * Edge-case tests of the exact-sort percentile helpers backing the
 * tail-latency reports: empty and single-sample sets, all-identical
 * samples, NaN exclusion, and the nearest-rank definition on sets
 * where interpolation would invent values that never occurred.
 */

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/percentile.h"

namespace diva
{
namespace
{

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

TEST(Percentile, EmptySetYieldsNaNStatsAndZeroCount)
{
    const LatencyStats s = computeLatencyStats({});
    EXPECT_EQ(s.count, 0u);
    EXPECT_TRUE(std::isnan(s.meanSec));
    EXPECT_TRUE(std::isnan(s.p50Sec));
    EXPECT_TRUE(std::isnan(s.p95Sec));
    EXPECT_TRUE(std::isnan(s.p99Sec));
    EXPECT_TRUE(std::isnan(s.maxSec));
    EXPECT_TRUE(std::isnan(percentileSorted({}, 50.0)));
}

TEST(Percentile, SingleSampleIsEveryPercentile)
{
    const LatencyStats s = computeLatencyStats({0.25});
    EXPECT_EQ(s.count, 1u);
    EXPECT_DOUBLE_EQ(s.meanSec, 0.25);
    EXPECT_DOUBLE_EQ(s.p50Sec, 0.25);
    EXPECT_DOUBLE_EQ(s.p95Sec, 0.25);
    EXPECT_DOUBLE_EQ(s.p99Sec, 0.25);
    EXPECT_DOUBLE_EQ(s.maxSec, 0.25);
}

TEST(Percentile, AllIdenticalSamplesCollapse)
{
    const LatencyStats s =
        computeLatencyStats(std::vector<double>(1000, 3.5));
    EXPECT_EQ(s.count, 1000u);
    EXPECT_DOUBLE_EQ(s.meanSec, 3.5);
    EXPECT_DOUBLE_EQ(s.p50Sec, 3.5);
    EXPECT_DOUBLE_EQ(s.p99Sec, 3.5);
    EXPECT_DOUBLE_EQ(s.maxSec, 3.5);
}

TEST(Percentile, NaNSamplesAreExcludedNotPropagated)
{
    const LatencyStats s =
        computeLatencyStats({kNaN, 1.0, kNaN, 3.0, kNaN});
    EXPECT_EQ(s.count, 2u) << "only the finite samples count";
    EXPECT_DOUBLE_EQ(s.meanSec, 2.0);
    EXPECT_DOUBLE_EQ(s.p50Sec, 1.0);
    EXPECT_DOUBLE_EQ(s.maxSec, 3.0);

    // An all-NaN set behaves like an empty one.
    const LatencyStats none = computeLatencyStats({kNaN, kNaN});
    EXPECT_EQ(none.count, 0u);
    EXPECT_TRUE(std::isnan(none.p99Sec));
}

TEST(Percentile, NearestRankNeverInterpolates)
{
    // 1..100: pK is exactly the Kth value, and every percentile is a
    // sample that actually occurred.
    std::vector<double> v;
    for (int i = 1; i <= 100; ++i)
        v.push_back(double(i));
    EXPECT_DOUBLE_EQ(percentileSorted(v, 50.0), 50.0);
    EXPECT_DOUBLE_EQ(percentileSorted(v, 95.0), 95.0);
    EXPECT_DOUBLE_EQ(percentileSorted(v, 99.0), 99.0);
    EXPECT_DOUBLE_EQ(percentileSorted(v, 100.0), 100.0);
    EXPECT_DOUBLE_EQ(percentileSorted(v, 0.0), 1.0);

    // Two samples: the median is the lower one (rank ceil(1) = 1),
    // not the midpoint.
    EXPECT_DOUBLE_EQ(percentileSorted({1.0, 9.0}, 50.0), 1.0);
    EXPECT_DOUBLE_EQ(percentileSorted({1.0, 9.0}, 51.0), 9.0);

    // Out-of-range p clamps instead of indexing out of bounds.
    EXPECT_DOUBLE_EQ(percentileSorted({1.0, 9.0}, -5.0), 1.0);
    EXPECT_DOUBLE_EQ(percentileSorted({1.0, 9.0}, 250.0), 9.0);
}

TEST(Percentile, StatsAreOrderedAndSorted)
{
    // Unsorted input with a heavy tail: p50 <= p95 <= p99 <= max.
    const LatencyStats s = computeLatencyStats(
        {0.9, 0.1, 5.0, 0.2, 0.3, 0.15, 0.25, 0.35, 0.12, 0.18});
    EXPECT_EQ(s.count, 10u);
    EXPECT_LE(s.p50Sec, s.p95Sec);
    EXPECT_LE(s.p95Sec, s.p99Sec);
    EXPECT_LE(s.p99Sec, s.maxSec);
    EXPECT_DOUBLE_EQ(s.maxSec, 5.0);
    EXPECT_DOUBLE_EQ(s.p99Sec, 5.0) << "nearest rank on 10 samples";
}

} // namespace
} // namespace diva
