/**
 * @file
 * Tests for the pluggable simulation-backend layer: registry lookup
 * and unknown-name handling, capability flags driving empty/NaN CSV
 * and null JSON cells for unmodeled metrics, PlanCache hit/miss
 * accounting, and byte-identity of a mixed chip/pod/gpu sweep across
 * plan-cache on/off and thread counts.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "backend/backend.h"
#include "backend/chip_backend.h"
#include "backend/plan_cache.h"
#include "backend/registry.h"
#include "common/task_pool.h"
#include "sweep/emit.h"
#include "sweep/runner.h"
#include "sweep/spec.h"
#include "tenant/serve.h"

namespace diva
{
namespace
{

/** Comma-split one CSV row (no quoted cells in these fixtures). */
std::vector<std::string>
cells(const std::string &row)
{
    std::vector<std::string> out;
    std::string cell;
    std::stringstream ss(row);
    while (std::getline(ss, cell, ','))
        out.push_back(cell);
    // A trailing empty cell (empty error column) is dropped by
    // getline; re-add it so indexing matches the header.
    if (!row.empty() && row.back() == ',')
        out.push_back("");
    return out;
}

/** Column index of `name` in csvHeader(). */
std::size_t
column(const std::string &name)
{
    const std::vector<std::string> header = cells(csvHeader());
    for (std::size_t i = 0; i < header.size(); ++i)
        if (header[i] == name)
            return i;
    ADD_FAILURE() << "no CSV column '" << name << "'";
    return 0;
}

TEST(BackendRegistry, BuiltInsResolveByNameAndKind)
{
    BackendRegistry &reg = BackendRegistry::instance();
    for (const char *name : {"chip", "pod", "gpu"}) {
        const SimBackend *b = reg.find(name);
        ASSERT_NE(b, nullptr) << name;
        EXPECT_STREQ(b->name(), name);
        // The kind round-trips through the name-keyed map.
        EXPECT_EQ(&reg.at(b->kind()), b);
    }
    const std::vector<std::string> names = reg.names();
    EXPECT_GE(names.size(), 3u);
    EXPECT_EQ(names[0], "chip");
    EXPECT_EQ(names[1], "pod");
    EXPECT_EQ(names[2], "gpu");
}

TEST(BackendRegistry, UnknownNameIsNullAndDuplicateAddThrows)
{
    EXPECT_EQ(BackendRegistry::instance().find("tpu-v9"), nullptr);
    // Registering over an existing name must be refused: shadowing a
    // substrate would silently change what cached keys mean.
    EXPECT_THROW(BackendRegistry::instance().add(
                     std::make_unique<ChipBackend>()),
                 std::runtime_error);
}

/** A toy substrate registered at runtime: proves register-and-go. */
class EchoBackend : public SimBackend
{
  public:
    const char *name() const override { return "echo"; }
    SweepBackend kind() const override
    {
        return SweepBackend::kSingleChip;
    }
    BackendCaps capabilities() const override { return {}; }
    void evaluate(const Scenario &scenario, PlanCache &plans,
                  ScenarioResult &out) const override
    {
        planNetwork(scenario, plans, out);
        out.seconds = 42.0;
    }
};

TEST(BackendRegistry, RuntimeBackendIsReachableByNameAlone)
{
    if (!BackendRegistry::instance().find("echo"))
        BackendRegistry::instance().add(
            std::make_unique<EchoBackend>());

    SweepSpec spec;
    spec.configs = {divaDefault(true)};
    spec.models = {"SqueezeNet"};
    spec.batches = {8};
    spec.backendNames = {"chip", "echo"};
    SweepRunner runner;
    const SweepReport report = runner.run(spec);
    ASSERT_EQ(report.results.size(), 2u);
    const ScenarioResult &chip = report.results[0];
    const ScenarioResult &echo = report.results[1];
    ASSERT_TRUE(echo.ok()) << echo.error;
    // The registered backend, not the built-in of its kind, ran.
    EXPECT_EQ(echo.scenario.effectiveBackend(), "echo");
    EXPECT_EQ(echo.seconds, 42.0);
    ASSERT_TRUE(chip.ok()) << chip.error;
    EXPECT_NE(chip.seconds, 42.0);
    // Distinct canonical keys: no result-cache aliasing.
    EXPECT_NE(chip.scenario.canonicalKey(),
              echo.scenario.canonicalKey());
    // CSV reports the registered name and its capability flags.
    const std::vector<std::string> row = cells(csvRow(echo));
    EXPECT_EQ(row[column("backend")], "echo");
    EXPECT_EQ(row[column("cycles")], "");
    EXPECT_EQ(row[column("utilization")], "nan");
}

TEST(SweepRunner, UnknownBackendIdIsAnErrorResult)
{
    Scenario s;
    s.config = divaDefault(true);
    s.model = "SqueezeNet";
    s.batch = 8;
    s.backendId = "warp-drive";
    const ScenarioResult r = runScenario(s);
    EXPECT_FALSE(r.ok());
    EXPECT_NE(r.error.find("no backend registered"),
              std::string::npos);
}

TEST(BackendRegistry, CapabilitiesMatchSubstrates)
{
    const BackendCaps chip =
        BackendRegistry::instance().find("chip")->capabilities();
    EXPECT_TRUE(chip.cycles && chip.utilization && chip.energy &&
                chip.dramTraffic && chip.engineRating);
    const BackendCaps gpu =
        BackendRegistry::instance().find("gpu")->capabilities();
    EXPECT_FALSE(gpu.cycles || gpu.utilization || gpu.energy ||
                 gpu.dramTraffic || gpu.engineRating);
}

TEST(PlanCache, CountsHitsAndMissesPerDistinctKey)
{
    PlanCache plans;
    const auto net_a = plans.network("SqueezeNet", 0);
    const auto net_b = plans.network("SqueezeNet", 0);
    EXPECT_EQ(net_a.get(), net_b.get()); // shared, not rebuilt
    plans.network("MobileNet", 0);
    PlanCache::Stats s = plans.stats();
    EXPECT_EQ(s.networkMisses, 2u);
    EXPECT_EQ(s.networkHits, 1u);

    plans.stream(*net_a, "SqueezeNet", 0, TrainingAlgorithm::kDpSgdR,
                 8, 0);
    plans.stream(*net_a, "SqueezeNet", 0, TrainingAlgorithm::kDpSgdR,
                 8, 0);
    // A different micro-batch is a different plan.
    plans.stream(*net_a, "SqueezeNet", 0, TrainingAlgorithm::kDpSgdR,
                 8, 4);
    s = plans.stats();
    EXPECT_EQ(s.streamMisses, 2u);
    EXPECT_EQ(s.streamHits, 1u);
    EXPECT_EQ(s.hits(), 2u);
    EXPECT_EQ(s.misses(), 4u);
    EXPECT_EQ(plans.size(), 4u);

    plans.clear();
    EXPECT_EQ(plans.size(), 0u);
    EXPECT_EQ(plans.stats().hits(), 0u);
}

TEST(PlanCache, DisabledCacheBuildsFreshAndCountsNothing)
{
    PlanCache plans(false);
    EXPECT_FALSE(plans.enabled());
    const auto a = plans.network("SqueezeNet", 0);
    const auto b = plans.network("SqueezeNet", 0);
    EXPECT_NE(a.get(), b.get());
    EXPECT_EQ(plans.size(), 0u);
    EXPECT_EQ(plans.stats().hits(), 0u);
    EXPECT_EQ(plans.stats().misses(), 0u);
}

/**
 * The striping width and the caller's thread count are pure
 * concurrency knobs: a key hashes to one stripe whatever their
 * number, concurrent same-key misses resolve first-insert-wins with
 * the loser counting a hit, and stats() sums stripes in index order.
 * So the hit/miss totals must be byte-identical across stripe counts
 * {1, 4, 16} x thread counts {1, 4} for the same lookup workload.
 */
TEST(PlanCache, HitMissTotalsIndependentOfStripesAndThreads)
{
    const char *kModels[] = {"SqueezeNet", "MobileNet"};
    const int kBatches[] = {4, 8};

    // Each of `tasks` workers performs the identical lookup sequence:
    // misses == distinct keys, hits == lookups - misses, regardless
    // of which worker builds first or which stripe a key lands on.
    auto drive = [&](PlanCache &plans, int threads) {
        TaskPool pool;
        const std::size_t tasks = std::size_t(threads) * 2;
        pool.parallelFor(tasks, threads, [&](std::size_t) {
            for (const char *model : kModels) {
                const auto net = plans.network(model, 0);
                for (int batch : kBatches)
                    plans.stream(*net, model, 0,
                                 TrainingAlgorithm::kDpSgdR, batch, 0);
            }
        });
        return tasks;
    };

    for (int threads : {1, 4}) {
        for (std::size_t stripes : {1u, 4u, 16u}) {
            PlanCache plans(true, stripes);
            EXPECT_EQ(plans.stripeCount(), stripes);
            const std::size_t tasks = drive(plans, threads);
            const PlanCache::Stats s = plans.stats();
            EXPECT_EQ(s.networkMisses, 2u)
                << stripes << " stripes, " << threads << " threads";
            EXPECT_EQ(s.streamMisses, 4u)
                << stripes << " stripes, " << threads << " threads";
            EXPECT_EQ(s.networkHits, tasks * 2u - 2u)
                << stripes << " stripes, " << threads << " threads";
            EXPECT_EQ(s.streamHits, tasks * 4u - 4u)
                << stripes << " stripes, " << threads << " threads";
            EXPECT_EQ(plans.size(), 6u);
        }
    }
}

TEST(PlanCache, UnknownModelThrowsAndCachesNothing)
{
    PlanCache plans;
    EXPECT_THROW(plans.network("AlexNet", 0), std::runtime_error);
    EXPECT_EQ(plans.size(), 0u);
    EXPECT_EQ(plans.stats().misses(), 0u);
}

/** Mixed chip/pod/gpu spec: 2 configs x 1 model x 2 batches. */
SweepSpec
mixedSpec()
{
    SweepSpec spec;
    spec.configs = {tpuV3Ws(), divaDefault(true)};
    spec.models = {"SqueezeNet"};
    spec.batches = {8, 32};
    spec.algorithms = {TrainingAlgorithm::kDpSgdR};
    spec.backends = {SweepBackend::kSingleChip,
                     SweepBackend::kMultiChip, SweepBackend::kGpu};
    MultiChipConfig pod;
    pod.numChips = 2;
    spec.pods = {pod};
    spec.gpus = {GpuConfig::a100Fp16()};
    return spec;
}

TEST(SweepRunner, PlanCacheCountersSurfaceInReport)
{
    SweepRunner runner;
    const SweepReport cold = runner.run(mixedSpec());
    // Every scenario shares one workload per batch: far fewer plan
    // builds than plan lookups.
    EXPECT_GT(cold.planMisses, 0u);
    EXPECT_GT(cold.planHits, 0u);
    EXPECT_GT(runner.planCache().size(), 0u);

    // A warm rerun is all result-cache hits: no jobs, no plan lookups.
    const SweepReport warm = runner.run(mixedSpec());
    EXPECT_EQ(warm.planHits, 0u);
    EXPECT_EQ(warm.planMisses, 0u);
}

TEST(SweepRunner, DisabledPlanCacheReportsZeroCounters)
{
    SweepOptions opts;
    opts.planCache = false;
    SweepRunner runner(opts);
    const SweepReport report = runner.run(mixedSpec());
    EXPECT_EQ(report.planHits, 0u);
    EXPECT_EQ(report.planMisses, 0u);
    EXPECT_FALSE(runner.planCache().enabled());
}

TEST(SweepRunner, MixedSweepCsvIsByteIdenticalAcrossPlanCacheAndThreads)
{
    const std::vector<Scenario> scenarios = mixedSpec().expand().scenarios;
    ASSERT_FALSE(scenarios.empty());
    std::string reference;
    for (const bool plan_cache : {true, false})
        for (const int threads : {1, 4}) {
            SweepOptions opts;
            opts.threads = threads;
            opts.planCache = plan_cache;
            SweepRunner runner(opts);
            const SweepReport report = runner.run(scenarios);
            EXPECT_EQ(report.failures, 0u);
            std::ostringstream csv, json;
            writeCsv(csv, report);
            writeJson(json, report);
            if (reference.empty()) {
                reference = csv.str() + json.str();
                continue;
            }
            EXPECT_EQ(csv.str() + json.str(), reference)
                << "plan_cache=" << plan_cache
                << " threads=" << threads;
        }
}

TEST(Emit, GpuRowsEmitEmptyOrNanForUnmodeledMetrics)
{
    Scenario s;
    s.model = "SqueezeNet";
    s.batch = 8;
    s.backend = SweepBackend::kGpu;
    s.gpu = GpuConfig::a100Fp16();
    const ScenarioResult r = runScenario(s);
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_GT(r.seconds, 0.0);

    const std::vector<std::string> row = cells(csvRow(r));
    ASSERT_EQ(row.size(), cells(csvHeader()).size());
    EXPECT_EQ(row[column("cycles")], "");
    EXPECT_EQ(row[column("compute_cycles")], "");
    EXPECT_EQ(row[column("allreduce_cycles")], "");
    EXPECT_EQ(row[column("utilization")], "nan");
    EXPECT_EQ(row[column("energy_j")], "nan");
    EXPECT_EQ(row[column("dram_bytes")], "");
    EXPECT_EQ(row[column("postproc_dram_bytes")], "");
    EXPECT_EQ(row[column("engine_power_w")], "nan");
    EXPECT_EQ(row[column("engine_area_mm2")], "nan");
    EXPECT_NE(row[column("seconds")], "nan");

    SweepReport report;
    report.results.push_back(r);
    std::ostringstream json;
    writeJson(json, report);
    EXPECT_NE(json.str().find("\"cycles\": null"), std::string::npos);
    EXPECT_NE(json.str().find("\"utilization\": null"),
              std::string::npos);
    EXPECT_NE(json.str().find("\"energy_j\": null"), std::string::npos);
    EXPECT_NE(json.str().find("\"dram_bytes\": null"),
              std::string::npos);
    EXPECT_EQ(json.str().find("\"seconds\": null"), std::string::npos);
}

TEST(Emit, ChipRowsStillCarryEveryMetric)
{
    Scenario s;
    s.config = divaDefault(true);
    s.model = "SqueezeNet";
    s.batch = 8;
    const ScenarioResult r = runScenario(s);
    ASSERT_TRUE(r.ok()) << r.error;
    const std::vector<std::string> row = cells(csvRow(r));
    EXPECT_NE(row[column("cycles")], "");
    EXPECT_NE(row[column("utilization")], "nan");
    EXPECT_NE(row[column("energy_j")], "nan");
    EXPECT_NE(row[column("dram_bytes")], "");
}

TEST(Serve, BackendAllowListResolvesThroughRegistry)
{
    ServeSpec spec;
    spec.config = divaDefault(true);
    TenantJob job;
    job.name = "t0";
    job.model = "SqueezeNet";
    job.batch = 4;
    job.steps = 2;
    spec.workload.name = "mix";
    spec.workload.jobs = {job};

    spec.backends = {"warp-drive"};
    EXPECT_NE(simulateServe(spec).error.find("unknown backend"),
              std::string::npos);

    // Pricing needs "chip" here (chips == 1); a pod-only allow-list
    // must refuse rather than silently switch substrates.
    spec.backends = {"pod"};
    EXPECT_NE(simulateServe(spec).error.find("not in the allowed"),
              std::string::npos);

    spec.backends = {"chip", "pod"};
    const ServeResult ok = simulateServe(spec);
    EXPECT_TRUE(ok.ok()) << ok.error;
}

} // namespace
} // namespace diva
