/**
 * @file
 * End-to-end functional DP pipeline test: train a classifier under a
 * privacy budget exactly the way examples/dp_mnist does, asserting
 * learning progress, the privacy guarantee, and the DP-SGD ==
 * DP-SGD(R) model identity over a realistic number of steps.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "dp/accountant.h"
#include "dp/data.h"
#include "dp/dp_sgd.h"

namespace diva
{
namespace
{

struct Split
{
    Dataset train;
    Dataset test;
};

Split
makeSplit(std::int64_t n_train, std::int64_t n_test, int dim,
          int classes, std::uint64_t seed)
{
    Rng rng(seed);
    const Dataset all = makeSyntheticClassification(
        n_train + n_test, dim, classes, rng, 4.0);
    Split split;
    split.train.numClasses = split.test.numClasses = classes;
    split.train.x = Tensor(n_train, dim);
    split.test.x = Tensor(n_test, dim);
    for (std::int64_t i = 0; i < n_train + n_test; ++i) {
        Dataset &dst = i < n_train ? split.train : split.test;
        const std::int64_t row = i < n_train ? i : i - n_train;
        for (int d = 0; d < dim; ++d)
            dst.x.at(row, d) = all.x.at(i, d);
        dst.y.push_back(all.y[std::size_t(i)]);
    }
    return split;
}

TEST(DpPipeline, TrainsUnderBudgetAndGeneralizes)
{
    const std::int64_t n_train = 2048;
    const std::int64_t batch = 64;
    const int steps = 120;
    const Split split = makeSplit(n_train, 512, 16, 4, 99);

    DpSgdConfig cfg;
    cfg.clipNorm = 1.0;
    cfg.noiseMultiplier = 1.1;
    cfg.learningRate = 0.4;

    Rng init(7);
    Mlp model({16, 32, 4}, init);
    DpSgdRTrainer trainer(model, cfg);
    RdpAccountant accountant(cfg.noiseMultiplier,
                             double(batch) / double(n_train));

    Rng batch_rng(11);
    Tensor x;
    std::vector<int> y;
    for (int step = 0; step < steps; ++step) {
        sampleBatch(split.train, batch, batch_rng, x, y);
        trainer.step(x, y);
        accountant.addSteps(1);
    }

    // Learned something real on held-out data...
    EXPECT_GT(model.accuracy(split.test.x, split.test.y), 0.7);
    // ...under a single-digit epsilon.
    const double eps = accountant.epsilon(1e-5);
    EXPECT_GT(eps, 0.0);
    EXPECT_LT(eps, 10.0);
}

TEST(DpPipeline, MoreNoiseCostsAccuracyButBuysPrivacy)
{
    const std::int64_t n_train = 2048;
    const std::int64_t batch = 64;
    const int steps = 100;
    const Split split = makeSplit(n_train, 512, 16, 4, 123);

    auto run_with_sigma = [&](double sigma, double &eps_out) {
        DpSgdConfig cfg;
        cfg.clipNorm = 1.0;
        cfg.noiseMultiplier = sigma;
        cfg.learningRate = 0.4;
        Rng init(7);
        Mlp model({16, 32, 4}, init);
        DpSgdRTrainer trainer(model, cfg);
        RdpAccountant acc(sigma, double(batch) / double(n_train));
        Rng batch_rng(11);
        Tensor x;
        std::vector<int> y;
        for (int step = 0; step < steps; ++step) {
            sampleBatch(split.train, batch, batch_rng, x, y);
            trainer.step(x, y);
            acc.addSteps(1);
        }
        eps_out = acc.epsilon(1e-5);
        return model.accuracy(split.test.x, split.test.y);
    };

    double eps_low = 0.0, eps_high = 0.0;
    const double acc_low_noise = run_with_sigma(0.6, eps_low);
    const double acc_high_noise = run_with_sigma(6.0, eps_high);
    // The privacy-utility trade-off must point the right way.
    EXPECT_LT(eps_high, eps_low);
    EXPECT_GT(acc_low_noise, acc_high_noise - 0.05);
}

TEST(DpPipeline, VanillaAndReweightedStayIdenticalLong)
{
    const Split split = makeSplit(1024, 64, 12, 3, 55);
    DpSgdConfig cfg;
    cfg.clipNorm = 0.8;
    cfg.noiseMultiplier = 1.0;
    cfg.learningRate = 0.3;

    Rng init_a(3), init_b(3);
    Mlp model_a({12, 24, 3}, init_a);
    Mlp model_b({12, 24, 3}, init_b);
    DpSgdTrainer vanilla(model_a, cfg);
    DpSgdRTrainer reweighted(model_b, cfg);

    Rng rng_a(9), rng_b(9);
    Tensor xa, xb;
    std::vector<int> ya, yb;
    for (int step = 0; step < 30; ++step) {
        sampleBatch(split.train, 32, rng_a, xa, ya);
        sampleBatch(split.train, 32, rng_b, xb, yb);
        vanilla.step(xa, ya);
        reweighted.step(xb, yb);
    }
    for (std::size_t l = 0; l < model_a.layers().size(); ++l) {
        EXPECT_LT(model_a.layers()[l].weight().maxAbsDiff(
                      model_b.layers()[l].weight()),
                  5e-3)
            << "layer " << l;
    }
    EXPECT_NEAR(model_a.accuracy(split.test.x, split.test.y),
                model_b.accuracy(split.test.x, split.test.y), 0.05);
}

} // namespace
} // namespace diva
