/**
 * @file
 * Unit tests for the numeric primitives (matmuls, ReLU, softmax-CE).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "dp/ops.h"

namespace diva
{
namespace
{

Tensor
random(std::int64_t r, std::int64_t c, Rng &rng)
{
    return Tensor::randn(r, c, rng, 1.0);
}

TEST(Matmul, KnownResult)
{
    Tensor a(2, 2), b(2, 2);
    a.at(0, 0) = 1; a.at(0, 1) = 2; a.at(1, 0) = 3; a.at(1, 1) = 4;
    b.at(0, 0) = 5; b.at(0, 1) = 6; b.at(1, 0) = 7; b.at(1, 1) = 8;
    const Tensor c = matmul(a, b);
    EXPECT_FLOAT_EQ(c.at(0, 0), 19);
    EXPECT_FLOAT_EQ(c.at(1, 1), 50);
}

TEST(Matmul, ShapeChecked)
{
    Tensor a(2, 3), b(2, 3);
    EXPECT_THROW(matmul(a, b), std::logic_error);
}

TEST(Matmul, TransAEqualsExplicitTranspose)
{
    Rng rng(10);
    const Tensor a = random(5, 3, rng);
    const Tensor b = random(5, 4, rng);
    const Tensor c = matmulTransA(a, b); // (3,4) = a^T b
    // Explicit: transpose a into (3,5) then multiply.
    Tensor at(3, 5);
    for (int i = 0; i < 5; ++i)
        for (int j = 0; j < 3; ++j)
            at.at(j, i) = a.at(i, j);
    const Tensor expected = matmul(at, b);
    EXPECT_LT(c.maxAbsDiff(expected), 1e-5);
}

TEST(Matmul, TransBEqualsExplicitTranspose)
{
    Rng rng(11);
    const Tensor a = random(4, 6, rng);
    const Tensor b = random(5, 6, rng);
    const Tensor c = matmulTransB(a, b); // (4,5) = a b^T
    Tensor bt(6, 5);
    for (int i = 0; i < 5; ++i)
        for (int j = 0; j < 6; ++j)
            bt.at(j, i) = b.at(i, j);
    const Tensor expected = matmul(a, bt);
    EXPECT_LT(c.maxAbsDiff(expected), 1e-5);
}

TEST(Relu, ForwardClampsNegatives)
{
    Tensor x(1, 4);
    x.at(0, 0) = -2;
    x.at(0, 1) = -0.5;
    x.at(0, 2) = 0;
    x.at(0, 3) = 3;
    const Tensor y = reluForward(x);
    EXPECT_FLOAT_EQ(y.at(0, 0), 0);
    EXPECT_FLOAT_EQ(y.at(0, 1), 0);
    EXPECT_FLOAT_EQ(y.at(0, 2), 0);
    EXPECT_FLOAT_EQ(y.at(0, 3), 3);
}

TEST(Relu, BackwardMasksByPreactivation)
{
    Tensor z(1, 3), g(1, 3);
    z.at(0, 0) = -1;
    z.at(0, 1) = 2;
    z.at(0, 2) = 0;
    g.at(0, 0) = 5;
    g.at(0, 1) = 5;
    g.at(0, 2) = 5;
    const Tensor gx = reluBackward(z, g);
    EXPECT_FLOAT_EQ(gx.at(0, 0), 0);
    EXPECT_FLOAT_EQ(gx.at(0, 1), 5);
    EXPECT_FLOAT_EQ(gx.at(0, 2), 0);
}

TEST(SoftmaxCrossEntropy, UniformLogits)
{
    Tensor logits(2, 4); // all zeros -> uniform distribution
    Tensor grad;
    const double loss =
        softmaxCrossEntropy(logits, {0, 3}, grad);
    EXPECT_NEAR(loss, std::log(4.0), 1e-6);
    // Gradient: p - onehot = 0.25 - 1 at the label, 0.25 elsewhere.
    EXPECT_NEAR(grad.at(0, 0), -0.75, 1e-6);
    EXPECT_NEAR(grad.at(0, 1), 0.25, 1e-6);
    EXPECT_NEAR(grad.at(1, 3), -0.75, 1e-6);
}

TEST(SoftmaxCrossEntropy, GradientRowsSumToZero)
{
    Rng rng(12);
    const Tensor logits = random(8, 10, rng);
    std::vector<int> labels;
    for (int i = 0; i < 8; ++i)
        labels.push_back(i % 10);
    Tensor grad;
    softmaxCrossEntropy(logits, labels, grad);
    for (std::int64_t i = 0; i < grad.rows(); ++i) {
        double row_sum = 0.0;
        for (std::int64_t j = 0; j < grad.cols(); ++j)
            row_sum += grad.at(i, j);
        EXPECT_NEAR(row_sum, 0.0, 1e-5);
    }
}

TEST(SoftmaxCrossEntropy, NumericallyStableForLargeLogits)
{
    Tensor logits(1, 3);
    logits.at(0, 0) = 1000.0f;
    logits.at(0, 1) = 999.0f;
    logits.at(0, 2) = -1000.0f;
    Tensor grad;
    const double loss = softmaxCrossEntropy(logits, {0}, grad);
    EXPECT_TRUE(std::isfinite(loss));
    EXPECT_LT(loss, 1.0);
}

TEST(SoftmaxCrossEntropy, MatchesNumericalGradient)
{
    Rng rng(13);
    Tensor logits = random(3, 5, rng);
    const std::vector<int> labels = {1, 4, 0};
    Tensor grad;
    softmaxCrossEntropy(logits, labels, grad);
    // Finite differences on the total (un-averaged) loss.
    const double eps = 1e-3;
    for (std::int64_t i = 0; i < 3; ++i) {
        for (std::int64_t j = 0; j < 5; ++j) {
            Tensor lp = logits, lm = logits;
            lp.at(i, j) += float(eps);
            lm.at(i, j) -= float(eps);
            Tensor g_unused;
            const double fp =
                softmaxCrossEntropy(lp, labels, g_unused) * 3;
            const double fm =
                softmaxCrossEntropy(lm, labels, g_unused) * 3;
            EXPECT_NEAR(grad.at(i, j), (fp - fm) / (2 * eps), 5e-3);
        }
    }
}

TEST(SoftmaxCrossEntropy, RejectsBadLabels)
{
    Tensor logits(1, 3);
    Tensor grad;
    EXPECT_THROW(softmaxCrossEntropy(logits, {3}, grad),
                 std::logic_error);
    EXPECT_THROW(softmaxCrossEntropy(logits, {0, 1}, grad),
                 std::logic_error);
}

} // namespace
} // namespace diva
