/**
 * @file
 * Tests for the im2col/col2im transforms and their adjointness -- the
 * foundation of the conv-as-GEMM lowering (Figure 6).
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dp/im2col.h"
#include "dp/ops.h"

namespace diva
{
namespace
{

ConvGeometry
geom(int cin, int cout, int k, int stride, int pad, int hw)
{
    ConvGeometry g;
    g.inChannels = cin;
    g.outChannels = cout;
    g.kernelH = g.kernelW = k;
    g.stride = stride;
    g.padding = pad;
    g.inH = g.inW = hw;
    return g;
}

TEST(ConvGeometry, SpatialMath)
{
    const ConvGeometry g = geom(3, 8, 3, 1, 1, 8);
    EXPECT_EQ(g.outH(), 8);
    EXPECT_EQ(g.outW(), 8);
    EXPECT_EQ(g.patchSize(), 27);
    EXPECT_EQ(g.outPixels(), 64);

    const ConvGeometry s2 = geom(3, 8, 3, 2, 1, 8);
    EXPECT_EQ(s2.outH(), 4);
}

TEST(Im2col, IdentityKernelIsIdentity)
{
    // 1x1 kernel, stride 1, no padding: patches == pixels.
    const ConvGeometry g = geom(2, 4, 1, 1, 0, 3);
    Rng rng(1);
    const Tensor x = Tensor::randn(1, 2 * 3 * 3, rng, 1.0);
    const Tensor patches = im2col(g, x, 0);
    ASSERT_EQ(patches.rows(), 9);
    ASSERT_EQ(patches.cols(), 2);
    for (int p = 0; p < 9; ++p) {
        EXPECT_FLOAT_EQ(patches.at(p, 0), x.at(0, p));
        EXPECT_FLOAT_EQ(patches.at(p, 1), x.at(0, 9 + p));
    }
}

TEST(Im2col, KnownPatchContents)
{
    // 1 channel, 2x2 kernel, stride 1, 3x3 input:
    //   1 2 3
    //   4 5 6   -> patch at (0,0) = [1 2 4 5]
    //   7 8 9
    const ConvGeometry g = geom(1, 1, 2, 1, 0, 3);
    Tensor x(1, 9);
    for (int i = 0; i < 9; ++i)
        x.at(0, i) = float(i + 1);
    const Tensor patches = im2col(g, x, 0);
    ASSERT_EQ(patches.rows(), 4);
    ASSERT_EQ(patches.cols(), 4);
    EXPECT_FLOAT_EQ(patches.at(0, 0), 1);
    EXPECT_FLOAT_EQ(patches.at(0, 1), 2);
    EXPECT_FLOAT_EQ(patches.at(0, 2), 4);
    EXPECT_FLOAT_EQ(patches.at(0, 3), 5);
    // Patch at output (1,1): [5 6 8 9].
    EXPECT_FLOAT_EQ(patches.at(3, 0), 5);
    EXPECT_FLOAT_EQ(patches.at(3, 3), 9);
}

TEST(Im2col, PaddingYieldsZeros)
{
    const ConvGeometry g = geom(1, 1, 3, 1, 1, 3);
    Tensor x(1, 9);
    for (int i = 0; i < 9; ++i)
        x.at(0, i) = 1.0f;
    const Tensor patches = im2col(g, x, 0);
    // Top-left output pixel: the first row and column of the 3x3
    // receptive field fall in the padding.
    EXPECT_FLOAT_EQ(patches.at(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(patches.at(0, 1), 0.0f);
    EXPECT_FLOAT_EQ(patches.at(0, 4), 1.0f); // center tap
}

TEST(Im2col, RejectsBadInputs)
{
    const ConvGeometry g = geom(1, 1, 3, 1, 0, 4);
    Tensor x(1, 5); // wrong length
    EXPECT_THROW(im2col(g, x, 0), std::logic_error);
    Tensor ok(1, 16);
    EXPECT_THROW(im2col(g, ok, 1), std::logic_error);
}

TEST(Col2im, InverseOfIm2colFor1x1)
{
    const ConvGeometry g = geom(2, 4, 1, 1, 0, 4);
    Rng rng(2);
    const Tensor x = Tensor::randn(1, 2 * 16, rng, 1.0);
    const Tensor back = col2im(g, im2col(g, x, 0));
    for (std::int64_t i = 0; i < x.cols(); ++i)
        EXPECT_FLOAT_EQ(back.at(0, i), x.at(0, i));
}

TEST(Col2im, CountsPatchOverlap)
{
    // 2x2 kernel stride 1 on 3x3: the center pixel appears in all 4
    // patches, corners in exactly 1.
    const ConvGeometry g = geom(1, 1, 2, 1, 0, 3);
    Tensor ones(4, 4);
    for (std::int64_t i = 0; i < ones.size(); ++i)
        ones[i] = 1.0f;
    const Tensor grad = col2im(g, ones);
    EXPECT_FLOAT_EQ(grad.at(0, 4), 4.0f); // center
    EXPECT_FLOAT_EQ(grad.at(0, 0), 1.0f); // corner
    EXPECT_FLOAT_EQ(grad.at(0, 1), 2.0f); // edge
}

TEST(Im2colCol2im, AdjointProperty)
{
    // <im2col(x), P> == <x, col2im(P)> for all x, P: the two
    // transforms are adjoint linear maps, which is exactly what makes
    // the GEMM-based backward pass correct.
    const ConvGeometry g = geom(3, 2, 3, 2, 1, 5);
    Rng rng(3);
    const Tensor x = Tensor::randn(1, 3 * 25, rng, 1.0);
    const Tensor patches =
        Tensor::randn(g.outPixels(), g.patchSize(), rng, 1.0);
    const Tensor ix = im2col(g, x, 0);
    const Tensor cp = col2im(g, patches);
    double lhs = 0.0;
    for (std::int64_t i = 0; i < ix.size(); ++i)
        lhs += double(ix[i]) * double(patches[i]);
    double rhs = 0.0;
    for (std::int64_t i = 0; i < cp.size(); ++i)
        rhs += double(cp[i]) * double(x[i]);
    EXPECT_NEAR(lhs, rhs, 1e-4);
}

TEST(Im2col, ShapeMatchesFigure6Algebra)
{
    // The patch matrix is the LHS operand of the forward conv GEMM:
    // its dims must equal Figure 6's (P*Q, Cin*R*S) per example.
    const ConvGeometry g = geom(16, 32, 3, 1, 1, 8);
    Rng rng(4);
    const Tensor x = Tensor::randn(2, 16 * 64, rng, 1.0);
    const Tensor patches = im2col(g, x, 1);
    EXPECT_EQ(patches.rows(), 64);      // P*Q
    EXPECT_EQ(patches.cols(), 16 * 9);  // Cin*R*S
}

} // namespace
} // namespace diva
