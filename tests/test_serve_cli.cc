/**
 * @file
 * End-to-end flag validation for the diva_serve and diva_sweep CLIs:
 * bad flag values must fail with a non-zero exit code, and a minimal
 * good invocation must succeed. ctest runs with the build directory as
 * the working directory, so the tool binaries sit at ./diva_serve and
 * ./diva_sweep; the suite skips (rather than fails) when the tools
 * were not built.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

namespace
{

bool
exists(const std::string &path)
{
    return std::ifstream(path).good();
}

/** Run a command with stdout/stderr dropped; -1 if system() failed. */
int
runQuiet(const std::string &cmd)
{
    const int status = std::system((cmd + " >/dev/null 2>&1").c_str());
    if (status == -1)
        return -1;
#ifdef WEXITSTATUS
    return WEXITSTATUS(status);
#else
    return status;
#endif
}

class ServeCli : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        if (!exists("./diva_serve") || !exists("./diva_sweep"))
            GTEST_SKIP() << "tool binaries not built";
    }
};

TEST_F(ServeCli, GoodInvocationSucceeds)
{
    EXPECT_EQ(runQuiet("./diva_serve --policy rr --tenants 2 --steps 4 "
                       "--quiet"),
              0);
}

TEST_F(ServeCli, StepsDefaultAppliesToTenantSpecsInAnyFlagOrder)
{
    // --steps fills in every --tenant spec that did not set its own
    // step count, wherever it appears on the command line.
    const std::string csv = "serve_cli_steps.csv";
    for (const char *order :
         {"--tenant SqueezeNet --steps 4", "--steps 4 --tenant SqueezeNet"}) {
        ASSERT_EQ(runQuiet(std::string("./diva_serve ") + order +
                           " --quiet --no-summary --csv " + csv),
                  0);
        std::ifstream in(csv);
        std::string header, row;
        ASSERT_TRUE(std::getline(in, header));
        ASSERT_TRUE(std::getline(in, row));
        EXPECT_NE(row.find(",4,4,1,"), std::string::npos)
            << order << ": steps,steps_done,completed -> " << row;
    }
    std::remove(csv.c_str());
}

TEST_F(ServeCli, BadServeFlagsFail)
{
    // Unknown policy name.
    EXPECT_NE(runQuiet("./diva_serve --policy bogus"), 0);
    // Zero/negative tenant counts.
    EXPECT_NE(runQuiet("./diva_serve --tenants 0"), 0);
    EXPECT_NE(runQuiet("./diva_serve --tenants -3"), 0);
    // Negative/zero budgets and quanta.
    EXPECT_NE(runQuiet("./diva_serve --wall-s -1"), 0);
    EXPECT_NE(runQuiet("./diva_serve --wall-s 0"), 0);
    EXPECT_NE(runQuiet("./diva_serve --quantum 0"), 0);
    EXPECT_NE(runQuiet("./diva_serve --steps -5"), 0);
    // Unbounded steps need a wall budget.
    EXPECT_NE(runQuiet("./diva_serve --steps 0"), 0);
    // Malformed tenant specs.
    EXPECT_NE(runQuiet("./diva_serve --tenant ResNet-50:0"), 0);
    EXPECT_NE(runQuiet("./diva_serve --tenant ResNet-50:8:-2"), 0);
    // Non-finite QoS rates and negative arrivals/departures reject.
    EXPECT_NE(runQuiet("./diva_serve --tenant ResNet-50:8:inf"), 0);
    EXPECT_NE(runQuiet("./diva_serve --tenant ResNet-50:8:nan"), 0);
    EXPECT_NE(runQuiet("./diva_serve --tenant ResNet-50:8:1:-3"), 0);
    // Departure before arrival: parses (both >= 0) but the serve
    // validation rejects it with a non-zero exit.
    EXPECT_NE(
        runQuiet("./diva_serve --tenant SqueezeNet:8:0:5:0:4:2 --quiet"),
        0);
    EXPECT_NE(runQuiet("./diva_serve --tenant SqueezeNet:8:0:0:0:4:-1"),
              0);
    // Unknown model in a tenant spec is a (runtime) serve error.
    EXPECT_NE(runQuiet("./diva_serve --tenant NoSuchNet --quiet"), 0);
    // Unknown flags and missing values.
    EXPECT_NE(runQuiet("./diva_serve --no-such-flag"), 0);
    EXPECT_NE(runQuiet("./diva_serve --policy"), 0);
}

TEST_F(ServeCli, DepartureEndsSessionEarly)
{
    // A tenant departing at t=0.001 with a huge step budget must stop
    // at its departure: the run succeeds and the departed column (20)
    // flips to 1 with the budget unmet.
    const std::string csv = "serve_cli_depart.csv";
    ASSERT_EQ(runQuiet("./diva_serve --tenant SqueezeNet:8:0:0:0:"
                       "100000:0.001 --quiet --no-summary --csv " +
                       csv),
              0);
    std::ifstream in(csv);
    std::string header, row;
    ASSERT_TRUE(std::getline(in, header));
    ASSERT_TRUE(std::getline(in, row));
    EXPECT_NE(header.find(",departed,"), std::string::npos);
    EXPECT_NE(row.find(",0,1,1,"), std::string::npos)
        << "completed,departed,admitted -> " << row;
    std::remove(csv.c_str());
}

TEST_F(ServeCli, TraceFlagsValidate)
{
    // Well-formed generated replay succeeds, with and without
    // admission.
    EXPECT_EQ(runQuiet("./diva_serve --arrivals poisson:rate=4,seed=3,"
                       "hold=1,qos=2 --steps 0 --policy edf --quiet"),
              0);
    EXPECT_EQ(runQuiet("./diva_serve --arrivals poisson:rate=4,seed=3,"
                       "hold=1,qos=2 --steps 0 --admission --quiet"),
              0);
    // Malformed generator specs and flag combinations fail fast.
    EXPECT_NE(runQuiet("./diva_serve --arrivals zipf:rate=2"), 0);
    EXPECT_NE(runQuiet("./diva_serve --arrivals poisson:rate=0"), 0);
    EXPECT_NE(runQuiet("./diva_serve --arrivals poisson:bogus=1"), 0);
    EXPECT_NE(runQuiet("./diva_serve --arrivals poisson --trace x.csv"),
              0);
    EXPECT_NE(runQuiet("./diva_serve --arrivals poisson "
                       "--tenant SqueezeNet"),
              0);
    EXPECT_NE(runQuiet("./diva_serve --trace /no/such/file.csv"), 0);
    EXPECT_NE(runQuiet("./diva_serve --admission-cap 0"), 0);
    EXPECT_NE(runQuiet("./diva_serve --save-trace t.csv"), 0)
        << "--save-trace needs a trace";

    // A recorded trace with departure-before-arrival fails at replay.
    const std::string path = "serve_cli_bad_trace.csv";
    {
        std::ofstream out(path);
        out << "model,arrival_s,depart_s,steps\n"
            << "SqueezeNet,5,2,4\n";
    }
    EXPECT_NE(runQuiet("./diva_serve --trace " + path + " --quiet"), 0);
    std::remove(path.c_str());
}

TEST_F(ServeCli, SweepTraceModeValidates)
{
    EXPECT_NE(runQuiet("./diva_sweep --mode trace"), 0)
        << "trace mode needs --arrivals or --trace";
    EXPECT_NE(runQuiet("./diva_sweep --mode trace --arrivals zipf"), 0);
    EXPECT_NE(runQuiet("./diva_sweep --mode trace --arrivals poisson "
                       "--loads 0"),
              0);
    EXPECT_NE(runQuiet("./diva_sweep --mode trace --trace x.csv "
                       "--loads 2"),
              0)
        << "--loads only scales the generator";
    EXPECT_EQ(runQuiet("./diva_sweep --quiet --mode trace --arrivals "
                       "poisson:rate=4,seed=3,hold=1,qos=2,steps=0 "
                       "--dataflows DiVa --ppu on --policies fifo,edf"),
              0);
}

TEST_F(ServeCli, BadSweepFlagsFail)
{
    EXPECT_NE(runQuiet("./diva_sweep --mode bogus"), 0);
    EXPECT_NE(runQuiet("./diva_sweep --mode duration"), 0)
        << "duration mode requires --wall-s";
    EXPECT_NE(runQuiet("./diva_sweep --mode tenant --policies bogus"), 0);
    EXPECT_NE(runQuiet("./diva_sweep --wall-s -2"), 0);
    EXPECT_NE(runQuiet("./diva_sweep --quantum 0"), 0);
    EXPECT_NE(runQuiet("./diva_sweep --steps 0"), 0);
    EXPECT_NE(runQuiet("./diva_sweep --arrive-every -1"), 0);
    EXPECT_NE(runQuiet("./diva_sweep --models NoSuchNet"), 0);
}

} // namespace
