/**
 * @file
 * End-to-end flag validation for the diva_serve and diva_sweep CLIs:
 * bad flag values must fail with a non-zero exit code, and a minimal
 * good invocation must succeed. ctest runs with the build directory as
 * the working directory, so the tool binaries sit at ./diva_serve and
 * ./diva_sweep; the suite skips (rather than fails) when the tools
 * were not built.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

namespace
{

bool
exists(const std::string &path)
{
    return std::ifstream(path).good();
}

/** Run a command with stdout/stderr dropped; -1 if system() failed. */
int
runQuiet(const std::string &cmd)
{
    const int status = std::system((cmd + " >/dev/null 2>&1").c_str());
    if (status == -1)
        return -1;
#ifdef WEXITSTATUS
    return WEXITSTATUS(status);
#else
    return status;
#endif
}

class ServeCli : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        if (!exists("./diva_serve") || !exists("./diva_sweep"))
            GTEST_SKIP() << "tool binaries not built";
    }
};

TEST_F(ServeCli, GoodInvocationSucceeds)
{
    EXPECT_EQ(runQuiet("./diva_serve --policy rr --tenants 2 --steps 4 "
                       "--quiet"),
              0);
}

TEST_F(ServeCli, StepsDefaultAppliesToTenantSpecsInAnyFlagOrder)
{
    // --steps fills in every --tenant spec that did not set its own
    // step count, wherever it appears on the command line.
    const std::string csv = "serve_cli_steps.csv";
    for (const char *order :
         {"--tenant SqueezeNet --steps 4", "--steps 4 --tenant SqueezeNet"}) {
        ASSERT_EQ(runQuiet(std::string("./diva_serve ") + order +
                           " --quiet --no-summary --csv " + csv),
                  0);
        std::ifstream in(csv);
        std::string header, row;
        ASSERT_TRUE(std::getline(in, header));
        ASSERT_TRUE(std::getline(in, row));
        EXPECT_NE(row.find(",4,4,1,"), std::string::npos)
            << order << ": steps,steps_done,completed -> " << row;
    }
    std::remove(csv.c_str());
}

TEST_F(ServeCli, BadServeFlagsFail)
{
    // Unknown policy name.
    EXPECT_NE(runQuiet("./diva_serve --policy bogus"), 0);
    // Zero/negative tenant counts.
    EXPECT_NE(runQuiet("./diva_serve --tenants 0"), 0);
    EXPECT_NE(runQuiet("./diva_serve --tenants -3"), 0);
    // Negative/zero budgets and quanta.
    EXPECT_NE(runQuiet("./diva_serve --wall-s -1"), 0);
    EXPECT_NE(runQuiet("./diva_serve --wall-s 0"), 0);
    EXPECT_NE(runQuiet("./diva_serve --quantum 0"), 0);
    EXPECT_NE(runQuiet("./diva_serve --steps -5"), 0);
    // Unbounded steps need a wall budget.
    EXPECT_NE(runQuiet("./diva_serve --steps 0"), 0);
    // Malformed tenant specs.
    EXPECT_NE(runQuiet("./diva_serve --tenant ResNet-50:0"), 0);
    EXPECT_NE(runQuiet("./diva_serve --tenant ResNet-50:8:-2"), 0);
    // Unknown model in a tenant spec is a (runtime) serve error.
    EXPECT_NE(runQuiet("./diva_serve --tenant NoSuchNet --quiet"), 0);
    // Unknown flags and missing values.
    EXPECT_NE(runQuiet("./diva_serve --no-such-flag"), 0);
    EXPECT_NE(runQuiet("./diva_serve --policy"), 0);
}

TEST_F(ServeCli, BadSweepFlagsFail)
{
    EXPECT_NE(runQuiet("./diva_sweep --mode bogus"), 0);
    EXPECT_NE(runQuiet("./diva_sweep --mode duration"), 0)
        << "duration mode requires --wall-s";
    EXPECT_NE(runQuiet("./diva_sweep --mode tenant --policies bogus"), 0);
    EXPECT_NE(runQuiet("./diva_sweep --wall-s -2"), 0);
    EXPECT_NE(runQuiet("./diva_sweep --quantum 0"), 0);
    EXPECT_NE(runQuiet("./diva_sweep --steps 0"), 0);
    EXPECT_NE(runQuiet("./diva_sweep --arrive-every -1"), 0);
    EXPECT_NE(runQuiet("./diva_sweep --models NoSuchNet"), 0);
}

} // namespace
