/**
 * @file
 * Tests of the datacenter-scale fleet layer: placement-policy choices
 * on skewed loads (energy-aware beats first-fit on joules across a
 * heterogeneous fleet, load-aware beats first-fit on tail latency),
 * migration-cost reconciliation between fleet totals and per-pod /
 * per-tenant sums, energy-budget preemption ordering, partial-SRAM
 * working-set switch costs, spec/trace validation, and
 * byte-determinism of the fleet emitters across engine thread counts
 * and warm plan caches.
 */

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "arrivals/generate.h"
#include "fleet/emit.h"
#include "fleet/engine.h"
#include "fleet/migration.h"
#include "tenant/context_switch.h"

namespace diva
{
namespace
{

/** A session: closed loop when rate is 0, open loop otherwise. */
TenantJob
job(const std::string &name, double arrival, std::uint64_t steps,
    double rate, int priority = 0)
{
    TenantJob j;
    j.name = name;
    j.model = "SqueezeNet";
    j.batch = 8;
    j.arrivalSec = arrival;
    j.steps = steps;
    j.qosStepsPerSec = rate;
    j.priority = priority;
    return j;
}

ArrivalTrace
trace(std::vector<TenantJob> jobs)
{
    ArrivalTrace t;
    t.name = "test";
    t.jobs = std::move(jobs);
    return t;
}

/** Expand one CLI pod template, asserting it parses. */
std::vector<PodSpec>
podsOf(const std::string &text)
{
    std::string err;
    const auto group = parsePodTemplate(text, &err);
    EXPECT_TRUE(group.has_value()) << err;
    return group.value_or(std::vector<PodSpec>{});
}

FleetSpec
fleetOf(const std::vector<std::vector<PodSpec>> &groups,
        PlacementKind placement)
{
    FleetSpec spec = buildFleet(groups);
    spec.placement = placement;
    return spec;
}

/** Total energy of `jobs` served by the given single-pod fleet. */
double
energyOn(const std::vector<PodSpec> &pod,
         const std::vector<TenantJob> &jobs)
{
    const FleetResult r = simulateFleet(
        fleetOf({pod}, PlacementKind::kFirstFit), trace(jobs));
    EXPECT_TRUE(r.ok()) << r.error;
    return r.totalEnergyJ;
}

TEST(FleetSpecParse, TemplatesExpandAndValidate)
{
    const std::vector<PodSpec> group = podsOf("df=OS,chips=2,count=3");
    ASSERT_EQ(group.size(), 3u);
    EXPECT_EQ(group[0].chips, 2);
    EXPECT_STREQ(group[0].backendName(), "pod");

    std::string err;
    EXPECT_FALSE(parsePodTemplate("df=WS,ppu=on", &err).has_value());
    EXPECT_NE(err.find("PPU"), std::string::npos) << err;
    EXPECT_FALSE(parsePodTemplate("bogus=1", &err).has_value());
    EXPECT_FALSE(parsePodTemplate("chips=0", &err).has_value());

    const FleetSpec spec =
        buildFleet({podsOf("df=DiVa,count=2"), podsOf("df=OS,ppu=off")});
    EXPECT_EQ(spec.name, "fleet-3");
    ASSERT_EQ(spec.pods.size(), 3u);
    EXPECT_EQ(spec.pods[0].name, "p0");
    EXPECT_EQ(spec.pods[2].name, "p2");
    EXPECT_TRUE(spec.validationError().empty())
        << spec.validationError();

    EXPECT_NE(FleetSpec{}.validationError().find("no pods"),
              std::string::npos);
}

TEST(FleetPlacementUnit, PoliciesAndFeasibility)
{
    const std::vector<PodLoadView> pods = {{0.6, 3}, {0.2, 1}, {0.4, 2}};
    const std::vector<double> demand = {0.3, 0.3, 0.3};
    const std::vector<double> joules = {5.0, 4.0, 1.0};

    // First-fit skips the full pod 0, load-aware takes the emptiest,
    // energy-aware the cheapest feasible.
    EXPECT_EQ(choosePod(PlacementKind::kFirstFit, pods, demand, joules,
                        0.8),
              1u);
    EXPECT_EQ(choosePod(PlacementKind::kLoadAware, pods, demand, joules,
                        1.0),
              1u);
    EXPECT_EQ(choosePod(PlacementKind::kEnergyAware, pods, demand,
                        joules, 1.0),
              2u);

    // No pod can absorb the demand: rejected everywhere.
    for (PlacementKind k : allPlacements())
        EXPECT_EQ(choosePod(k, pods, {0.5, 0.9, 0.7}, joules, 1.0),
                  kNoPod);

    EXPECT_EQ(placementFromName("energy"),
              std::optional(PlacementKind::kEnergyAware));
    EXPECT_EQ(placementFromName("bogus"), std::nullopt);
    EXPECT_STREQ(placementName(PlacementKind::kLoadAware), "load");
}

TEST(FleetPlacement, EnergyAwareBeatsFirstFitOnJoules)
{
    // Heterogeneous fleet with the pricier design point first, so
    // first-fit (which stacks best-effort tenants on pod 0) pays more
    // joules than energy-aware (which routes to the cheaper pod).
    std::vector<TenantJob> jobs;
    for (int i = 0; i < 6; ++i)
        jobs.push_back(job("t" + std::to_string(i), 0.0, 8, 0.0));

    std::vector<PodSpec> a = podsOf("df=DiVa");
    std::vector<PodSpec> b = podsOf("df=OS");
    const double ea = energyOn(a, jobs);
    const double eb = energyOn(b, jobs);
    ASSERT_NE(ea, eb) << "design points price identically; the "
                         "energy-aware comparison would be vacuous";
    if (ea < eb)
        std::swap(a, b); // expensive pod first

    const FleetResult ff = simulateFleet(
        fleetOf({a, b}, PlacementKind::kFirstFit), trace(jobs));
    const FleetResult en = simulateFleet(
        fleetOf({a, b}, PlacementKind::kEnergyAware), trace(jobs));
    ASSERT_TRUE(ff.ok()) << ff.error;
    ASSERT_TRUE(en.ok()) << en.error;

    EXPECT_EQ(ff.pods[0].placed, jobs.size());
    EXPECT_EQ(en.pods[1].placed, jobs.size());
    EXPECT_LT(en.totalEnergyJ, ff.totalEnergyJ);
}

TEST(FleetPlacement, LoadAwareBeatsFirstFitOnTailLatency)
{
    // Eight modest open-loop sessions all fit on one pod's demand cap,
    // so first-fit stacks every one on p0 and their steps queue behind
    // each other; load-aware spreads them 4/4 and the p99 step latency
    // drops.
    std::vector<TenantJob> jobs;
    for (int i = 0; i < 8; ++i)
        jobs.push_back(job("t" + std::to_string(i), 0.0, 12, 20.0));

    const std::vector<std::vector<PodSpec>> pods = {
        podsOf("df=DiVa,count=2")};
    const FleetResult ff = simulateFleet(
        fleetOf(pods, PlacementKind::kFirstFit), trace(jobs));
    const FleetResult ld = simulateFleet(
        fleetOf(pods, PlacementKind::kLoadAware), trace(jobs));
    ASSERT_TRUE(ff.ok()) << ff.error;
    ASSERT_TRUE(ld.ok()) << ld.error;

    ASSERT_EQ(ff.rejectedCount, 0u);
    EXPECT_EQ(ff.pods[0].placed, jobs.size());
    EXPECT_EQ(ld.pods[0].placed, jobs.size() / 2);
    EXPECT_EQ(ld.pods[1].placed, jobs.size() / 2);
    EXPECT_LT(ld.aggStepLatency.p99Sec, ff.aggStepLatency.p99Sec);
}

TEST(FleetMigration, RebalanceMovesLoadAndCostsReconcile)
{
    // Best-effort sessions stack on p0 under first-fit; with the
    // rebalance loop on, the idle p1 pulls work over. Every migration
    // is billed to the moved tenant and to the destination pod, so the
    // fleet totals must equal both per-pod and per-tenant sums.
    std::vector<TenantJob> jobs;
    for (int i = 0; i < 8; ++i)
        jobs.push_back(job("t" + std::to_string(i), 0.0, 60, 0.0));

    FleetSpec spec = fleetOf({podsOf("df=DiVa,count=2")},
                             PlacementKind::kFirstFit);
    spec.rebalance.enabled = true;
    spec.rebalance.skewThreshold = 0.2;
    spec.controlIntervalSec = 0.02;
    const FleetResult r = simulateFleet(spec, trace(jobs));
    ASSERT_TRUE(r.ok()) << r.error;
    ASSERT_GT(r.migrations, 0u);

    std::uint64_t pod_in = 0, pod_out = 0, ten_mig = 0;
    std::uint64_t pod_steps = 0, ten_steps = 0;
    double pod_sec = 0.0, pod_j = 0.0, pod_energy = 0.0;
    double ten_sec = 0.0, ten_j = 0.0, ten_energy = 0.0;
    Bytes pod_bytes = 0;
    for (const FleetPodReport &p : r.pods) {
        pod_in += p.migratedIn;
        pod_out += p.migratedOut;
        pod_sec += p.migrationSec;
        pod_j += p.migrationEnergyJ;
        pod_bytes += p.migrationBytes;
        pod_energy += p.energyJ;
        pod_steps += p.stepsDone;
    }
    for (const FleetTenantMetrics &t : r.tenants) {
        ten_mig += t.migrations;
        ten_sec += t.migrationSec;
        ten_j += t.migrationEnergyJ;
        ten_energy += t.energyJ;
        ten_steps += t.stepsDone;
    }
    EXPECT_EQ(r.migrations, pod_in);
    EXPECT_EQ(r.migrations, pod_out);
    EXPECT_EQ(r.migrations, ten_mig);
    EXPECT_DOUBLE_EQ(r.migrationSec, pod_sec);
    EXPECT_NEAR(r.migrationSec, ten_sec, 1e-12 + 1e-12 * pod_sec);
    EXPECT_DOUBLE_EQ(r.migrationEnergyJ, pod_j);
    EXPECT_NEAR(r.migrationEnergyJ, ten_j, 1e-12 + 1e-12 * pod_j);
    EXPECT_EQ(r.migrationBytes, pod_bytes);
    EXPECT_EQ(r.totalSteps, pod_steps);
    EXPECT_EQ(r.totalSteps, ten_steps);
    EXPECT_NEAR(r.totalEnergyJ, pod_energy,
                1e-9 * std::max(1.0, pod_energy));
    EXPECT_NEAR(r.totalEnergyJ, ten_energy,
                1e-9 * std::max(1.0, ten_energy));
    for (const FleetTenantMetrics &t : r.tenants)
        EXPECT_TRUE(t.completed) << t.job.name;
    // Migration seconds are billed as destination busy time, so they
    // must also extend the pod's active span: utilization stays <= 1
    // even when a transfer lands after the pod's last step.
    for (const FleetPodReport &p : r.pods)
        EXPECT_LE(p.utilization, 1.0 + 1e-9) << p.name;
}

TEST(FleetBudget, PowerCapPreemptsLowPriorityFirst)
{
    // Derive a cap that sustains one tenant but not two from an
    // unbudgeted run, then check the budget keeps the high-priority
    // tenant running and only stalls (not starves) the low one.
    const std::vector<TenantJob> jobs = {job("hi", 0.0, 40, 0.0, 5),
                                         job("lo", 0.0, 40, 0.0, 0)};
    FleetSpec spec = fleetOf({podsOf("df=DiVa")},
                             PlacementKind::kFirstFit);
    const FleetResult free_run = simulateFleet(spec, trace(jobs));
    ASSERT_TRUE(free_run.ok()) << free_run.error;
    ASSERT_TRUE(std::isfinite(free_run.makespanSec));

    // The two tenants serialize on the one pod, so the free-run
    // average draw is one tenant's sustained watts; each tenant's
    // *projected* draw is that full figure, so a 1.5x cap admits one
    // tenant but not both.
    const double watts =
        free_run.totalEnergyJ / free_run.makespanSec;
    spec.budget.powerCapW = 1.5 * watts;
    spec.controlIntervalSec = free_run.makespanSec / 16.0;
    const FleetResult capped = simulateFleet(spec, trace(jobs));
    ASSERT_TRUE(capped.ok()) << capped.error;

    EXPECT_GT(capped.suspensions, 0u);
    EXPECT_EQ(capped.tenants[0].suspensions, 0u);
    EXPECT_GT(capped.tenants[1].suspensions, 0u);
    EXPECT_TRUE(capped.tenants[0].completed);
    EXPECT_TRUE(capped.tenants[1].completed);

    // With its rival preempted the high-priority tenant stops
    // time-slicing and finishes earlier than in the free run.
    EXPECT_LT(capped.tenants[0].endSec, free_run.tenants[0].endSec);
}

TEST(FleetBudget, JouleBudgetEndsTheRunEarly)
{
    const std::vector<TenantJob> jobs = {job("hi", 0.0, 60, 0.0, 5),
                                         job("lo", 0.0, 60, 0.0, 0)};
    FleetSpec spec = fleetOf({podsOf("df=DiVa")},
                             PlacementKind::kFirstFit);
    const FleetResult free_run = simulateFleet(spec, trace(jobs));
    ASSERT_TRUE(free_run.ok()) << free_run.error;

    spec.budget.totalJ = 0.4 * free_run.totalEnergyJ;
    spec.controlIntervalSec = free_run.makespanSec / 16.0;
    const FleetResult capped = simulateFleet(spec, trace(jobs));
    ASSERT_TRUE(capped.ok()) << capped.error;

    EXPECT_GT(capped.suspensions, 0u);
    EXPECT_LT(capped.totalEnergyJ, free_run.totalEnergyJ);
    EXPECT_FALSE(capped.tenants[0].completed &&
                 capped.tenants[1].completed);
}

TEST(FleetAdmission, InfeasibleDemandIsRejected)
{
    const FleetResult r = simulateFleet(
        fleetOf({podsOf("df=DiVa,count=2")}, PlacementKind::kLoadAware),
        trace({job("greedy", 0.0, 8, 1e9), job("ok", 0.0, 8, 0.0)}));
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.rejectedCount, 1u);
    EXPECT_EQ(r.placedCount, 1u);
    EXPECT_FALSE(r.tenants[0].admitted);
    EXPECT_EQ(r.tenants[0].finalPod, kNoPod);
    EXPECT_EQ(r.tenants[0].stepsDone, 0u);
    EXPECT_TRUE(std::isnan(r.tenants[0].achievedStepsPerSec));
    EXPECT_TRUE(r.tenants[1].completed);
}

TEST(FleetValidation, BadSpecsAndTracesErrorOut)
{
    const ArrivalTrace one = trace({job("a", 0.0, 4, 0.0)});

    FleetResult r = simulateFleet(FleetSpec{}, one);
    EXPECT_FALSE(r.ok());
    EXPECT_NE(r.error.find("no pods"), std::string::npos) << r.error;

    FleetSpec zero_chip = fleetOf({podsOf("df=DiVa")},
                                  PlacementKind::kFirstFit);
    zero_chip.pods[0].chips = 0;
    EXPECT_FALSE(simulateFleet(zero_chip, one).ok());

    FleetSpec bad_backend = fleetOf({podsOf("df=DiVa")},
                                    PlacementKind::kFirstFit);
    bad_backend.backends = {"bogus"};
    r = simulateFleet(bad_backend, one);
    EXPECT_FALSE(r.ok());
    EXPECT_NE(r.error.find("unknown backend"), std::string::npos)
        << r.error;

    const FleetSpec good = fleetOf({podsOf("df=DiVa")},
                                   PlacementKind::kFirstFit);
    EXPECT_FALSE(simulateFleet(good, ArrivalTrace{}).ok());
    r = simulateFleet(
        good, trace({job("late", 5.0, 4, 0.0), job("early", 0.0, 4, 0.0)}));
    EXPECT_FALSE(r.ok());

    // Error runs still emit: one placeholder row with the error last.
    std::ostringstream csv;
    writeFleetTenantCsv(csv, r);
    EXPECT_NE(csv.str().find(r.error), std::string::npos);
    std::ostringstream json;
    writeFleetJson(json, r);
    EXPECT_NE(json.str().find("\"error\""), std::string::npos);
}

TEST(FleetWorkingSet, PartialSwitchIsStrictlyCheaper)
{
    const AcceleratorConfig cfg = divaDefault(true);
    const SwitchCost full = ContextSwitchModel(cfg, 1, 1.0).cost();
    const SwitchCost part = ContextSwitchModel(cfg, 1, 0.25).cost();
    EXPECT_LT(part.cycles, full.cycles);
    EXPECT_LT(part.seconds, full.seconds);
    EXPECT_LT(part.energyJ, full.energyJ);
    EXPECT_LT(part.dramBytes, full.dramBytes);

    // Out-of-range fractions clamp to the whole-SRAM switch.
    const SwitchCost clamped = ContextSwitchModel(cfg, 1, 7.0).cost();
    EXPECT_EQ(clamped.seconds, full.seconds);
    EXPECT_EQ(clamped.dramBytes, full.dramBytes);

    const std::vector<PodSpec> pods = podsOf("df=DiVa,count=2");
    const MigrationCost mfull = migrationCost(pods[0], pods[1], 1.0);
    const MigrationCost mpart = migrationCost(pods[0], pods[1], 0.5);
    EXPECT_LT(mpart.seconds, mfull.seconds);
    EXPECT_LT(mpart.energyJ, mfull.energyJ);
    EXPECT_LT(mpart.dramBytes, mfull.dramBytes);
}

TEST(FleetDeterminism, EmittersAreByteIdenticalAcrossThreads)
{
    std::string err;
    const auto gen = parseTraceGenSpec(
        "diurnal:rate=24,horizon=6,seed=11,qos=4,hold=4,cap=160", &err);
    ASSERT_TRUE(gen.has_value()) << err;
    const ArrivalTrace t = generateTrace(*gen);
    ASSERT_FALSE(t.jobs.empty());

    FleetSpec spec =
        fleetOf({podsOf("df=DiVa,count=3"), podsOf("df=OS")},
                PlacementKind::kLoadAware);
    spec.rebalance.enabled = true;
    spec.controlIntervalSec = 0.5;

    auto emit = [&](const FleetResult &r) {
        std::ostringstream os;
        writeFleetTenantCsv(os, r);
        writeFleetPodCsv(os, r);
        writeFleetJson(os, r, true);
        return os.str();
    };

    SweepOptions one_opts;
    SweepRunner one(one_opts);
    SweepOptions four_opts;
    four_opts.threads = 4;
    SweepRunner four(four_opts);

    const std::string serial = emit(simulateFleet(spec, t, one, 1));
    const std::string threaded = emit(simulateFleet(spec, t, four, 4));
    EXPECT_EQ(serial, threaded);

    // A rerun against the now-warm plan cache emits the same bytes:
    // cache accounting never leaks into the output.
    const std::string warm = emit(simulateFleet(spec, t, four, 4));
    EXPECT_EQ(serial, warm);
}

} // namespace
} // namespace diva
