/**
 * @file
 * Unit tests for the functional tensor class.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "dp/tensor.h"

namespace diva
{
namespace
{

TEST(Tensor, ZeroInitialized)
{
    const Tensor t(3, 4);
    EXPECT_EQ(t.rows(), 3);
    EXPECT_EQ(t.cols(), 4);
    EXPECT_EQ(t.size(), 12);
    for (std::int64_t i = 0; i < t.size(); ++i)
        EXPECT_FLOAT_EQ(t[i], 0.0f);
}

TEST(Tensor, AtAccessorsRoundTrip)
{
    Tensor t(2, 3);
    t.at(1, 2) = 7.0f;
    t.at(0, 0) = -1.0f;
    EXPECT_FLOAT_EQ(t.at(1, 2), 7.0f);
    EXPECT_FLOAT_EQ(t.at(0, 0), -1.0f);
    EXPECT_FLOAT_EQ(t[5], 7.0f); // row-major layout
}

TEST(Tensor, AtBoundsChecked)
{
    Tensor t(2, 3);
    EXPECT_THROW(t.at(2, 0), std::logic_error);
    EXPECT_THROW(t.at(0, 3), std::logic_error);
    EXPECT_THROW(t.at(-1, 0), std::logic_error);
}

TEST(Tensor, RandnStatistics)
{
    Rng rng(3);
    const Tensor t = Tensor::randn(100, 100, rng, 2.0);
    EXPECT_NEAR(std::sqrt(t.l2NormSq() / double(t.size())), 2.0, 0.05);
}

TEST(Tensor, NormOfKnownVector)
{
    Tensor t(1, 4);
    t.at(0, 0) = 3.0f;
    t.at(0, 1) = 4.0f;
    EXPECT_DOUBLE_EQ(t.l2NormSq(), 25.0);
    EXPECT_DOUBLE_EQ(t.l2Norm(), 5.0);
}

TEST(Tensor, ScaleAndAdd)
{
    Tensor a(1, 3);
    a.at(0, 0) = 1;
    a.at(0, 1) = 2;
    a.at(0, 2) = 3;
    Tensor b = a;
    a.scale(2.0);
    EXPECT_FLOAT_EQ(a.at(0, 1), 4.0f);
    a.add(b);
    EXPECT_FLOAT_EQ(a.at(0, 2), 9.0f);
    a.addScaled(b, -1.0);
    EXPECT_FLOAT_EQ(a.at(0, 0), 2.0f);
}

TEST(Tensor, AddShapeChecked)
{
    Tensor a(2, 2), b(2, 3);
    EXPECT_THROW(a.add(b), std::logic_error);
    EXPECT_THROW(a.addScaled(b, 1.0), std::logic_error);
}

TEST(Tensor, SetZero)
{
    Rng rng(1);
    Tensor t = Tensor::randn(4, 4, rng, 1.0);
    t.setZero();
    EXPECT_DOUBLE_EQ(t.l2NormSq(), 0.0);
}

TEST(Tensor, MaxAbsDiff)
{
    Tensor a(1, 2), b(1, 2);
    a.at(0, 0) = 1.0f;
    b.at(0, 0) = 1.5f;
    b.at(0, 1) = -0.25f;
    EXPECT_DOUBLE_EQ(a.maxAbsDiff(b), 0.5);
    EXPECT_DOUBLE_EQ(a.maxAbsDiff(a), 0.0);
}

} // namespace
} // namespace diva
