/**
 * @file
 * Reproduction-band tests: the paper's headline numbers, asserted as
 * tolerance bands over the full benchmark protocol (Figure 5/13
 * mini-batch selection). These are the repository's contract -- if a
 * model change moves a headline outside its band, the reproduction has
 * regressed even if every unit test still passes.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "arch/accelerator_config.h"
#include "energy/energy_model.h"
#include "models/zoo.h"
#include "sim/executor.h"
#include "train/memory_model.h"
#include "train/planner.h"

namespace diva
{
namespace
{

double
geomean(const std::vector<double> &v)
{
    double acc = 0.0;
    for (double x : v)
        acc += std::log(x);
    return std::exp(acc / double(v.size()));
}

int
protocolBatch(const Network &net)
{
    return std::max(
        1, maxBatchSize(net, TrainingAlgorithm::kDpSgd, 16_GiB));
}

SimResult
run(const AcceleratorConfig &cfg, const Network &net,
    TrainingAlgorithm algo)
{
    return Executor(cfg).run(
        buildOpStream(net, algo, protocolBatch(net)));
}

TEST(Reproduction, Figure5SlowdownBands)
{
    // Paper: DP-SGD avg 9.1x, DP-SGD(R) avg 5.8x slower than SGD.
    std::vector<double> dp, dpr;
    for (const auto &net : allModels()) {
        const double sgd =
            double(run(tpuV3Ws(), net, TrainingAlgorithm::kSgd)
                       .totalCycles());
        dp.push_back(double(run(tpuV3Ws(), net,
                                TrainingAlgorithm::kDpSgd)
                                .totalCycles()) /
                     sgd);
        dpr.push_back(double(run(tpuV3Ws(), net,
                                 TrainingAlgorithm::kDpSgdR)
                                 .totalCycles()) /
                      sgd);
    }
    const double dp_avg = geomean(dp);
    const double dpr_avg = geomean(dpr);
    EXPECT_GT(dp_avg, 5.0);
    EXPECT_LT(dp_avg, 18.0);
    EXPECT_GT(dpr_avg, 3.0);
    EXPECT_LT(dpr_avg, 11.0);
    EXPECT_LT(dpr_avg, dp_avg);
}

TEST(Reproduction, Figure13SpeedupBands)
{
    // Paper: DiVa avg 3.6x (max 7.3x) over WS for DP-SGD(R).
    std::vector<double> speedups;
    double max_speedup = 0.0;
    for (const auto &net : allModels()) {
        const double ws = double(
            run(tpuV3Ws(), net, TrainingAlgorithm::kDpSgdR)
                .totalCycles());
        const double dv = double(
            run(divaDefault(true), net, TrainingAlgorithm::kDpSgdR)
                .totalCycles());
        speedups.push_back(ws / dv);
        max_speedup = std::max(max_speedup, ws / dv);
    }
    const double avg = geomean(speedups);
    EXPECT_GT(avg, 2.4);
    EXPECT_LT(avg, 5.5);
    EXPECT_GT(max_speedup, 5.5);
    EXPECT_LT(max_speedup, 12.0);
}

TEST(Reproduction, Figure13GapToNonPrivateSgd)
{
    // Paper: DiVa's DP-SGD(R) reaches ~75% of non-private WS-SGD.
    std::vector<double> ratios;
    for (const auto &net : allModels()) {
        const double sgd_ws = double(
            run(tpuV3Ws(), net, TrainingAlgorithm::kSgd).totalCycles());
        const double dp_dv = double(
            run(divaDefault(true), net, TrainingAlgorithm::kDpSgdR)
                .totalCycles());
        ratios.push_back(sgd_ws / dp_dv);
    }
    const double avg = geomean(ratios);
    EXPECT_GT(avg, 0.5);
    EXPECT_LT(avg, 1.1);
}

TEST(Reproduction, Figure15UtilizationGainBands)
{
    // Paper: per-example wgrad utilization gain avg 5.5x on CNNs.
    const AcceleratorConfig ws_cfg = tpuV3Ws();
    const AcceleratorConfig dv_cfg = divaDefault(true);
    std::vector<double> cnn_gains;
    for (const auto &net : allModels()) {
        if (net.family != ModelFamily::kCnn)
            continue;
        const SimResult ws =
            run(ws_cfg, net, TrainingAlgorithm::kDpSgdR);
        const SimResult dv =
            run(dv_cfg, net, TrainingAlgorithm::kDpSgdR);
        cnn_gains.push_back(
            dv.stageUtilization(Stage::kPerExampleGrad, dv_cfg) /
            ws.stageUtilization(Stage::kPerExampleGrad, ws_cfg));
    }
    const double avg = geomean(cnn_gains);
    EXPECT_GT(avg, 3.0);
    EXPECT_LT(avg, 9.0);
}

TEST(Reproduction, Figure16EnergyBands)
{
    // Paper: avg 2.6x (max 4.6x) energy reduction.
    std::vector<double> savings;
    for (const auto &net : allModels()) {
        const AcceleratorConfig ws_cfg = tpuV3Ws();
        const AcceleratorConfig dv_cfg = divaDefault(true);
        const double e_ws = EnergyModel::energy(
            run(ws_cfg, net, TrainingAlgorithm::kDpSgdR), ws_cfg)
            .total();
        const double e_dv = EnergyModel::energy(
            run(dv_cfg, net, TrainingAlgorithm::kDpSgdR), dv_cfg)
            .total();
        savings.push_back(e_ws / e_dv);
    }
    const double avg = geomean(savings);
    EXPECT_GT(avg, 2.0);
    EXPECT_LT(avg, 6.5);
}

TEST(Reproduction, PpuTrafficReductionBand)
{
    // Paper: 99% reduction in post-processing off-chip movement.
    std::vector<double> reductions;
    for (const auto &net : allModels()) {
        const double ws = double(
            run(tpuV3Ws(), net, TrainingAlgorithm::kDpSgdR)
                .postProcessingDram.total());
        const double dv = double(
            run(divaDefault(true), net, TrainingAlgorithm::kDpSgdR)
                .postProcessingDram.total());
        reductions.push_back(1.0 - dv / ws);
    }
    double avg = 0.0;
    for (double r : reductions)
        avg += r;
    avg /= double(reductions.size());
    EXPECT_GT(avg, 0.95);
}

TEST(Reproduction, MobileNetExceptionOnGpusAndDivaSgdWin)
{
    // Two qualitative signatures the paper calls out by name:
    // MobileNet's DP training on DiVa outpaces even non-private
    // WS-SGD, and DiVa-SGD beats WS-SGD on average.
    const Network mn = mobilenet();
    const double sgd_ws = double(
        run(tpuV3Ws(), mn, TrainingAlgorithm::kSgd).totalCycles());
    const double dp_dv = double(
        run(divaDefault(true), mn, TrainingAlgorithm::kDpSgdR)
            .totalCycles());
    EXPECT_LT(dp_dv, sgd_ws);

    std::vector<double> sgd_gains;
    for (const auto &net : allModels()) {
        const double ws = double(
            run(tpuV3Ws(), net, TrainingAlgorithm::kSgd).totalCycles());
        const double dv = double(
            run(divaDefault(true), net, TrainingAlgorithm::kSgd)
                .totalCycles());
        sgd_gains.push_back(ws / dv);
    }
    EXPECT_GT(geomean(sgd_gains), 1.2);
}

TEST(Reproduction, SensitivityMonotonicity)
{
    // Paper Section VI-C: DiVa's advantage shrinks monotonically with
    // input scale.
    auto speedup_for = [&](const Network &net) {
        const int batch = protocolBatch(net);
        const OpStream s =
            buildOpStream(net, TrainingAlgorithm::kDpSgdR, batch);
        return double(Executor(tpuV3Ws()).run(s).totalCycles()) /
               double(Executor(divaDefault(true)).run(s).totalCycles());
    };
    EXPECT_GT(speedup_for(resnet50(32)),
              speedup_for(resnet50(128)));
    EXPECT_GT(speedup_for(bertBase(32)), speedup_for(bertBase(128)));
}

} // namespace
} // namespace diva
