/**
 * @file
 * Fuzz/property tests: the planner, executor, memory model and energy
 * model must uphold their invariants on randomly generated networks,
 * not just the nine hand-built benchmarks.
 */

#include <gtest/gtest.h>

#include "arch/accelerator_config.h"
#include "energy/energy_model.h"
#include "models/random_network.h"
#include "sim/executor.h"
#include "train/memory_model.h"
#include "train/planner.h"

namespace diva
{
namespace
{

class RandomNetworkFuzz : public ::testing::TestWithParam<int>
{
  protected:
    void
    SetUp() override
    {
        Rng rng(std::uint64_t(GetParam()) * 1000003ULL + 17);
        net_ = randomNetwork(rng);
    }

    Network net_;
};

TEST_P(RandomNetworkFuzz, StructurallyValid)
{
    EXPECT_FALSE(net_.layers.empty());
    EXPECT_GT(net_.paramCount(), 0);
    EXPECT_GT(net_.activationElemsPerExample(), 0u);
    EXPECT_GT(net_.numWeightedLayers(), 0);
}

TEST_P(RandomNetworkFuzz, PlannerProducesValidStreams)
{
    for (auto algo :
         {TrainingAlgorithm::kSgd, TrainingAlgorithm::kDpSgd,
          TrainingAlgorithm::kDpSgdR}) {
        const OpStream s = buildOpStream(net_, algo, 8);
        EXPECT_GT(s.ops.size(), 0u);
        for (const auto &op : s.ops) {
            if (op.type == OpType::kGemm) {
                EXPECT_TRUE(op.shape.valid());
                EXPECT_GT(op.count, 0u);
            } else {
                EXPECT_GT(op.inElems, 0u);
            }
        }
    }
}

TEST_P(RandomNetworkFuzz, WorkConservationAcrossAlgorithms)
{
    // DP-SGD does exactly SGD's GEMM work; DP-SGD(R) strictly more.
    const Macs sgd =
        buildOpStream(net_, TrainingAlgorithm::kSgd, 8).totalGemmMacs();
    const Macs dp =
        buildOpStream(net_, TrainingAlgorithm::kDpSgd, 8)
            .totalGemmMacs();
    const Macs dpr =
        buildOpStream(net_, TrainingAlgorithm::kDpSgdR, 8)
            .totalGemmMacs();
    EXPECT_EQ(dp, sgd);
    EXPECT_GT(dpr, sgd);
}

TEST_P(RandomNetworkFuzz, ExecutorInvariantsHold)
{
    const OpStream stream =
        buildOpStream(net_, TrainingAlgorithm::kDpSgdR, 8);
    for (const auto &cfg :
         {tpuV3Ws(), systolicOs(true), divaDefault(false),
          divaDefault(true)}) {
        const SimResult r = Executor(cfg).run(stream);
        EXPECT_GT(r.totalCycles(), 0u) << cfg.name;
        EXPECT_GT(r.totalMacs(), 0u) << cfg.name;
        EXPECT_LE(r.overallUtilization(cfg), 1.0) << cfg.name;
        EXPECT_GT(r.overallUtilization(cfg), 0.0) << cfg.name;
        const EnergyBreakdown e = EnergyModel::energy(r, cfg);
        EXPECT_GT(e.total(), 0.0) << cfg.name;
    }
}

TEST_P(RandomNetworkFuzz, PpuNeverHurts)
{
    const OpStream stream =
        buildOpStream(net_, TrainingAlgorithm::kDpSgdR, 8);
    const Cycles without =
        Executor(divaDefault(false)).run(stream).totalCycles();
    const Cycles with =
        Executor(divaDefault(true)).run(stream).totalCycles();
    EXPECT_LE(with, without);
}

TEST_P(RandomNetworkFuzz, MemoryModelMonotonic)
{
    Bytes prev = 0;
    for (int b : {1, 4, 16, 64}) {
        const Bytes t =
            trainingMemory(net_, TrainingAlgorithm::kDpSgd, b).total();
        EXPECT_GT(t, prev);
        prev = t;
    }
    // DP-SGD always costs at least as much as SGD at equal batch.
    EXPECT_GE(trainingMemory(net_, TrainingAlgorithm::kDpSgd, 16)
                  .total(),
              trainingMemory(net_, TrainingAlgorithm::kSgd, 16)
                  .total());
}

TEST_P(RandomNetworkFuzz, MicrobatchingConservesWork)
{
    const Macs mono =
        buildOpStream(net_, TrainingAlgorithm::kDpSgdR, 24)
            .totalGemmMacs();
    const Macs micro =
        buildMicrobatchedOpStream(net_, TrainingAlgorithm::kDpSgdR, 24,
                                  5)
            .totalGemmMacs();
    EXPECT_EQ(micro, mono);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomNetworkFuzz,
                         ::testing::Range(0, 24));

} // namespace
} // namespace diva
