/**
 * @file
 * Golden regression tests: exact cycle counts and traffic for
 * hand-computable GEMMs on every engine, locking the cycle models
 * against accidental drift. Each expected value is derived in the
 * accompanying comment from the model equations.
 */

#include <gtest/gtest.h>

#include "arch/accelerator_config.h"
#include "gemm/engine.h"

namespace diva
{
namespace
{

GemmResult
computeOnly(const AcceleratorConfig &cfg, const GemmShape &shape)
{
    GemmOptions opt;
    opt.writeOutputToDram = false;
    opt.lhsFromDram = false;
    opt.rhsFromDram = false;
    return GemmEngineModel::create(cfg)->simulate(shape, opt);
}

TEST(Golden, WsSingleTileGemm)
{
    // (128,128,128), one tile: latch 128/8 = 16, stream
    // 128 + 128 + 128 - 1 = 383 -> 399 compute cycles.
    const GemmResult r = computeOnly(tpuV3Ws(), GemmShape(128, 128, 128));
    EXPECT_EQ(r.computeCycles, 399u);
    // No operand traffic; total = compute + 100 latency.
    EXPECT_EQ(r.cycles, 499u);
    EXPECT_EQ(r.dram.total(), 0u);
}

TEST(Golden, WsMultiTileGemm)
{
    // (256,256,256): 2x2 tiles of (128,128); each costs 16 + 256 +
    // 128 + 128 - 1 = 527 -> 4 * 527 = 2108.
    const GemmResult r = computeOnly(tpuV3Ws(), GemmShape(256, 256, 256));
    EXPECT_EQ(r.computeCycles, 2108u);
}

TEST(Golden, WsTinyKGemm)
{
    // (128,1,128): latch ceil(1/8)=1, stream 128 + 1 + 128 - 1 = 256
    // -> 257 compute cycles for 16384 MACs (util 0.39%).
    const GemmResult r = computeOnly(tpuV3Ws(), GemmShape(128, 1, 128));
    EXPECT_EQ(r.computeCycles, 257u);
}

TEST(Golden, WsDoubleBufferedWeights)
{
    // (256,256,256) with double buffering: first tile 16 + 527-16=527
    // full; remaining 3 tiles max(16, 511+16... each tile stream=527-16
    // Compute directly: latch=16, stream=511 (256+128+128-1).
    // Non-overlapped: 4*(16+511) = 2108. Overlapped: (16+511) +
    // 3*max(16,511) = 527 + 1533 = 2060.
    AcceleratorConfig cfg = tpuV3Ws();
    cfg.wsDoubleBufferWeights = true;
    const GemmResult r = computeOnly(cfg, GemmShape(256, 256, 256));
    EXPECT_EQ(r.computeCycles, 2060u);
}

TEST(Golden, OsSingleTileGemm)
{
    // (128,64,128): stream 64 + 128 + 128 - 1 = 319, drain
    // ceil(128/8) = 16 -> 335.
    const GemmResult r =
        computeOnly(systolicOs(false), GemmShape(128, 64, 128));
    EXPECT_EQ(r.computeCycles, 335u);
}

TEST(Golden, OsPartialTileGemm)
{
    // (64,32,64): one partial tile: 32 + 64 + 64 - 1 = 159, drain
    // ceil(64/8) = 8 -> 167.
    const GemmResult r =
        computeOnly(systolicOs(false), GemmShape(64, 32, 64));
    EXPECT_EQ(r.computeCycles, 167u);
}

TEST(Golden, OuterProductSingleTile)
{
    // (128,64,128): max(K=64, drain 16) + 2 = 66.
    const GemmResult r =
        computeOnly(divaDefault(false), GemmShape(128, 64, 128));
    EXPECT_EQ(r.computeCycles, 66u);
}

TEST(Golden, OuterProductDrainBound)
{
    // (128,1,128): max(1, 16) + 2 = 18 -- the drain, not K, binds.
    const GemmResult r =
        computeOnly(divaDefault(false), GemmShape(128, 1, 128));
    EXPECT_EQ(r.computeCycles, 18u);
}

TEST(Golden, OuterProductMultiTile)
{
    // (256,100,300): tiles_m=2, tiles_n=3 -> 6 tiles, each
    // max(100,16)+2 = 102 -> 612.
    const GemmResult r =
        computeOnly(divaDefault(false), GemmShape(256, 100, 300));
    EXPECT_EQ(r.computeCycles, 612u);
}

TEST(Golden, TrafficSmallGemmWithDram)
{
    // (128,128,128) from DRAM: reads 2*128*128*2 = 65536 B, writes
    // 128*128*4 = 65536 B; memory cycles = ceil(131072 / 478.72..)
    // = 274.
    const GemmResult r = GemmEngineModel::create(divaDefault(false))
                             ->simulate(GemmShape(128, 128, 128));
    EXPECT_EQ(r.dram.readBytes, 65536u);
    EXPECT_EQ(r.dram.writeBytes, 65536u);
    EXPECT_EQ(r.memoryCycles, 274u);
    // Memory-bound: 274 > compute 130 -> total 274 + 100.
    EXPECT_EQ(r.cycles, 374u);
}

TEST(Golden, BatchedScalesExactly)
{
    const auto engine = GemmEngineModel::create(divaDefault(false));
    GemmOptions opt;
    opt.writeOutputToDram = false;
    opt.lhsFromDram = false;
    opt.rhsFromDram = false;
    const GemmResult one =
        engine->simulateBatched(GemmShape(128, 64, 128), 1, opt);
    const GemmResult many =
        engine->simulateBatched(GemmShape(128, 64, 128), 37, opt);
    EXPECT_EQ(many.computeCycles, 37 * one.computeCycles);
    // Latency charged once per train, not per GEMM.
    EXPECT_EQ(many.cycles, many.computeCycles + 100u);
}

TEST(Golden, WsSramPortRates)
{
    // Table I per-cycle rates feed the SRAM energy: WS reads
    // 128*2 + 128*8*2 = 2304 B and writes 128*4 = 512 B per compute
    // cycle.
    const GemmResult r = computeOnly(tpuV3Ws(), GemmShape(128, 128, 128));
    EXPECT_EQ(r.sramReadBytes, 399u * 2304u);
    EXPECT_EQ(r.sramWriteBytes, 399u * 512u);
}

} // namespace
} // namespace diva
