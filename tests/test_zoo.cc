/**
 * @file
 * Tests for the nine-network model zoo: structural sanity, parameter
 * counts in the published ranges, and sensitivity-scaling behavior.
 */

#include <gtest/gtest.h>

#include "models/zoo.h"

namespace diva
{
namespace
{

TEST(Zoo, AllModelsPresentInPaperOrder)
{
    const auto models = allModels();
    ASSERT_EQ(models.size(), 9u);
    EXPECT_EQ(models[0].name, "VGG-16");
    EXPECT_EQ(models[1].name, "ResNet-50");
    EXPECT_EQ(models[2].name, "ResNet-152");
    EXPECT_EQ(models[3].name, "SqueezeNet");
    EXPECT_EQ(models[4].name, "MobileNet");
    EXPECT_EQ(models[5].name, "BERT-base");
    EXPECT_EQ(models[6].name, "BERT-large");
    EXPECT_EQ(models[7].name, "LSTM-small");
    EXPECT_EQ(models[8].name, "LSTM-large");
}

TEST(Zoo, FamiliesMatchPaperGrouping)
{
    const auto models = allModels();
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(models[std::size_t(i)].family, ModelFamily::kCnn);
    EXPECT_EQ(models[5].family, ModelFamily::kTransformer);
    EXPECT_EQ(models[6].family, ModelFamily::kTransformer);
    EXPECT_EQ(models[7].family, ModelFamily::kRnn);
    EXPECT_EQ(models[8].family, ModelFamily::kRnn);
}

TEST(Zoo, EveryModelIsWellFormed)
{
    for (const auto &net : allModels()) {
        EXPECT_FALSE(net.layers.empty()) << net.name;
        EXPECT_GT(net.paramCount(), 0) << net.name;
        EXPECT_GT(net.inputElemsPerExample, 0u) << net.name;
        EXPECT_GT(net.activationElemsPerExample(),
                  net.inputElemsPerExample)
            << net.name;
        EXPECT_GT(net.numWeightedLayers(), 0) << net.name;
        EXPECT_GE(net.paramCount(), net.maxLayerParamCount())
            << net.name;
    }
}

TEST(Zoo, ResNet50ConvCount)
{
    // 1 stem + 3*(3+4+6+3) bottleneck convs + 4 downsamples + 1 fc.
    const Network net = resnet50();
    int convs = 0, fcs = 0;
    for (const auto &l : net.layers) {
        convs += l.kind == LayerKind::kConv2d ? 1 : 0;
        fcs += l.kind == LayerKind::kLinear ? 1 : 0;
    }
    EXPECT_EQ(convs, 1 + 3 * 16 + 4);
    EXPECT_EQ(fcs, 1);
}

TEST(Zoo, ParamCountsInPublishedRange)
{
    // Backbone parameter counts (CIFAR heads shrink the classifiers,
    // so we check the published order of magnitude).
    EXPECT_NEAR(double(resnet50().paramCount()), 23.5e6, 1.5e6);
    EXPECT_NEAR(double(resnet152().paramCount()), 58.0e6, 3e6);
    EXPECT_NEAR(double(bertBase().paramCount()), 85.0e6, 5e6);
    EXPECT_NEAR(double(bertLarge().paramCount()), 302.0e6, 15e6);
    EXPECT_LT(squeezenet().paramCount(), 2'000'000);
    EXPECT_NEAR(double(mobilenet().paramCount()), 3.2e6, 1e6);
}

TEST(Zoo, RelativeModelSizes)
{
    EXPECT_GT(resnet152().paramCount(), resnet50().paramCount());
    EXPECT_GT(bertLarge().paramCount(), bertBase().paramCount());
    EXPECT_GT(lstmLarge().paramCount(), lstmSmall().paramCount());
    EXPECT_LT(squeezenet().paramCount(), vgg16().paramCount());
}

TEST(Zoo, BertLayerStructure)
{
    const Network net = bertBase();
    // 12 encoders x 8 layers + classifier.
    EXPECT_EQ(net.layers.size(), 12u * 8u + 1u);
    int attn = 0;
    for (const auto &l : net.layers)
        attn += l.kind == LayerKind::kAttentionMatmul ? 1 : 0;
    EXPECT_EQ(attn, 24);
}

TEST(Zoo, LstmHasSequentialRecurrentLayers)
{
    const Network net = lstmLarge();
    int sequential = 0;
    for (const auto &l : net.layers)
        sequential += l.sequential ? 1 : 0;
    EXPECT_EQ(sequential, 2); // one hh projection per LSTM layer
}

TEST(Zoo, ImageSizeScalingGrowsActivationsNotParams)
{
    const Network base = resnet50(32);
    const Network big = resnet50(64);
    EXPECT_EQ(base.paramCount(), big.paramCount());
    EXPECT_GT(big.activationElemsPerExample(),
              2 * base.activationElemsPerExample());
}

TEST(Zoo, SeqLenScalingGrowsActivationsNotParams)
{
    const Network base = bertBase(32);
    const Network big = bertBase(256);
    EXPECT_EQ(base.paramCount(), big.paramCount());
    EXPECT_GT(big.activationElemsPerExample(),
              4 * base.activationElemsPerExample());
}

TEST(Zoo, BreakdownSubsetMatchesFigure14)
{
    const auto subset = breakdownModels();
    ASSERT_EQ(subset.size(), 4u);
    EXPECT_EQ(subset[0].name, "VGG-16");
    EXPECT_EQ(subset[1].name, "ResNet-152");
    EXPECT_EQ(subset[2].name, "BERT-large");
    EXPECT_EQ(subset[3].name, "LSTM-large");
}

TEST(Zoo, FamilyNames)
{
    EXPECT_STREQ(familyName(ModelFamily::kCnn), "CNN");
    EXPECT_STREQ(familyName(ModelFamily::kTransformer), "Transformer");
    EXPECT_STREQ(familyName(ModelFamily::kRnn), "RNN");
}

/** All CNNs must survive the sensitivity image-size sweep. */
class CnnImageSweep
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(CnnImageSweep, BuildsAtScaledSize)
{
    const auto [model_idx, size] = GetParam();
    Network net;
    switch (model_idx) {
      case 0: net = vgg16(size); break;
      case 1: net = resnet50(size); break;
      case 2: net = resnet152(size); break;
      case 3: net = squeezenet(size); break;
      default: net = mobilenet(size); break;
    }
    EXPECT_GT(net.paramCount(), 0);
    EXPECT_GT(net.activationElemsPerExample(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sensitivity, CnnImageSweep,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                       ::testing::Values(32, 64, 128, 256)));

} // namespace
} // namespace diva
