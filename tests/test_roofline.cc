/**
 * @file
 * Tests for the roofline analysis: classification correctness and the
 * paper's Section III-C structural findings.
 */

#include <gtest/gtest.h>

#include "arch/accelerator_config.h"
#include "models/zoo.h"
#include "sim/roofline.h"
#include "train/planner.h"

namespace diva
{
namespace
{

TEST(Roofline, MachineBalanceMatchesConfig)
{
    const AcceleratorConfig cfg = tpuV3Ws();
    const RooflineSummary s = analyzeRoofline(
        cfg, buildOpStream(resnet50(), TrainingAlgorithm::kSgd, 8));
    // 16384 MACs/cycle over ~478.7 B/cycle ~ 34.2 MACs/B.
    EXPECT_NEAR(s.machineBalance, 34.2, 0.1);
}

TEST(Roofline, OneVerdictPerOp)
{
    const OpStream stream =
        buildOpStream(vgg16(), TrainingAlgorithm::kDpSgdR, 16);
    const RooflineSummary s = analyzeRoofline(tpuV3Ws(), stream);
    EXPECT_EQ(s.ops.size(), stream.ops.size());
    EXPECT_EQ(s.computeBoundOps + s.memoryBoundOps, stream.ops.size());
}

TEST(Roofline, PostProcessingIsMemoryBoundOnWs)
{
    // Section III-C: norm/clip/reduce are memory-bandwidth limited.
    const OpStream stream =
        buildOpStream(resnet50(), TrainingAlgorithm::kDpSgd, 32);
    const RooflineSummary s = analyzeRoofline(tpuV3Ws(), stream);
    for (std::size_t i = 0; i < stream.ops.size(); ++i) {
        if (stream.ops[i].type != OpType::kGemm) {
            EXPECT_EQ(s.ops[i].bound, Bound::kMemory)
                << "op " << i << " (" << opTypeName(stream.ops[i].type)
                << ")";
        }
    }
}

TEST(Roofline, NormOpsLeaveMemoryRooflineWithPpu)
{
    // With the PPU, norm derivation generates no DRAM traffic, so the
    // norm ops become compute-classified (trivially cheap).
    const OpStream stream =
        buildOpStream(resnet50(), TrainingAlgorithm::kDpSgdR, 32);
    const RooflineSummary s =
        analyzeRoofline(divaDefault(true), stream);
    for (std::size_t i = 0; i < stream.ops.size(); ++i) {
        if (stream.ops[i].type == OpType::kGradNorm) {
            EXPECT_EQ(s.ops[i].bound, Bound::kCompute) << "op " << i;
        }
    }
}

TEST(Roofline, MemoryBoundShareDropsOnDiva)
{
    // The paper's end-to-end story in one number: most DP-SGD(R)
    // cycles on WS sit under the memory roofline; DiVa+PPU moves the
    // iteration to the compute region.
    const OpStream stream =
        buildOpStream(resnet152(), TrainingAlgorithm::kDpSgdR, 32);
    const RooflineSummary ws = analyzeRoofline(tpuV3Ws(), stream);
    const RooflineSummary dv =
        analyzeRoofline(divaDefault(true), stream);
    EXPECT_GT(ws.memoryBoundCycleShare, 0.4);
    EXPECT_LT(dv.memoryBoundCycleShare, ws.memoryBoundCycleShare);
}

TEST(Roofline, EfficiencyBounded)
{
    const OpStream stream =
        buildOpStream(bertBase(), TrainingAlgorithm::kDpSgdR, 8);
    for (const auto &cfg : {tpuV3Ws(), divaDefault(true)}) {
        const RooflineSummary s = analyzeRoofline(cfg, stream);
        for (const auto &op : s.ops) {
            EXPECT_GE(op.efficiency, 0.0);
            EXPECT_LE(op.efficiency, 1.0);
            EXPECT_GE(op.intensity, 0.0);
        }
    }
}

TEST(Roofline, BoundNames)
{
    EXPECT_STREQ(boundName(Bound::kCompute), "compute");
    EXPECT_STREQ(boundName(Bound::kMemory), "memory");
}

} // namespace
} // namespace diva
