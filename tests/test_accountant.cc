/**
 * @file
 * Tests for the RDP privacy accountant (subsampled Gaussian mechanism).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "dp/accountant.h"

namespace diva
{
namespace
{

TEST(Accountant, RejectsInvalidParameters)
{
    EXPECT_THROW(RdpAccountant(0.0, 0.5), std::logic_error);
    EXPECT_THROW(RdpAccountant(1.0, 0.0), std::logic_error);
    EXPECT_THROW(RdpAccountant(1.0, 1.5), std::logic_error);
}

TEST(Accountant, FullBatchGaussianClosedForm)
{
    // q = 1: RDP(alpha) = alpha / (2 sigma^2).
    const RdpAccountant acc(2.0, 1.0);
    EXPECT_NEAR(acc.rdpSingleStep(2), 2.0 / 8.0, 1e-12);
    EXPECT_NEAR(acc.rdpSingleStep(16), 16.0 / 8.0, 1e-12);
}

TEST(Accountant, SubsamplingAmplifiesPrivacy)
{
    // Smaller q must give strictly smaller per-step RDP.
    const RdpAccountant full(1.0, 1.0);
    const RdpAccountant sub(1.0, 0.01);
    for (int alpha : {2, 4, 8, 32})
        EXPECT_LT(sub.rdpSingleStep(alpha), full.rdpSingleStep(alpha));
}

TEST(Accountant, RdpIncreasingInAlpha)
{
    const RdpAccountant acc(1.0, 0.05);
    double prev = 0.0;
    for (int alpha : {2, 3, 4, 8, 16, 32, 64}) {
        const double r = acc.rdpSingleStep(alpha);
        EXPECT_GE(r, prev);
        prev = r;
    }
}

TEST(Accountant, EpsilonGrowsWithSteps)
{
    RdpAccountant acc(1.0, 0.01);
    acc.addSteps(100);
    const double e100 = acc.epsilon(1e-5);
    acc.addSteps(900);
    const double e1000 = acc.epsilon(1e-5);
    EXPECT_GT(e1000, e100);
    EXPECT_EQ(acc.steps(), 1000);
}

TEST(Accountant, EpsilonShrinksWithMoreNoise)
{
    RdpAccountant low_noise(0.7, 0.01);
    RdpAccountant high_noise(2.0, 0.01);
    low_noise.addSteps(500);
    high_noise.addSteps(500);
    EXPECT_GT(low_noise.epsilon(1e-5), high_noise.epsilon(1e-5));
}

TEST(Accountant, EpsilonShrinksWithSmallerSamplingRate)
{
    RdpAccountant big_batch(1.0, 0.2);
    RdpAccountant small_batch(1.0, 0.01);
    big_batch.addSteps(500);
    small_batch.addSteps(500);
    EXPECT_GT(big_batch.epsilon(1e-5), small_batch.epsilon(1e-5));
}

TEST(Accountant, EpsilonDecreasesWithLargerDelta)
{
    RdpAccountant acc(1.0, 0.01);
    acc.addSteps(1000);
    EXPECT_GT(acc.epsilon(1e-7), acc.epsilon(1e-3));
}

TEST(Accountant, MatchesReferenceAbadiRegime)
{
    // The canonical MNIST setting of Abadi et al. / TF-Privacy:
    // sigma = 1.1, q = 256/60000, T = 60 epochs * 234 steps,
    // delta = 1e-5 -> epsilon ~ 3.0 (RDP accountants report ~2.9-3.2).
    RdpAccountant acc(1.1, 256.0 / 60000.0);
    acc.addSteps(60 * 234);
    const double eps = acc.epsilon(1e-5);
    EXPECT_GT(eps, 2.5);
    EXPECT_LT(eps, 3.6);
}

TEST(Accountant, ZeroStepsGivesTinyEpsilon)
{
    const RdpAccountant acc(1.0, 0.01);
    // Only the log(1/delta)/(alpha-1) conversion term remains, which
    // the order grid drives toward zero.
    EXPECT_LT(acc.epsilon(1e-5), 0.1);
}

TEST(Accountant, OptimalOrderWithinGrid)
{
    RdpAccountant acc(1.0, 0.02);
    acc.addSteps(1000);
    const int alpha = acc.optimalOrder(1e-5);
    EXPECT_GE(alpha, 2);
    EXPECT_LE(alpha, 256);
}

TEST(Accountant, RejectsBadDelta)
{
    RdpAccountant acc(1.0, 0.01);
    EXPECT_THROW(acc.epsilon(0.0), std::logic_error);
    EXPECT_THROW(acc.epsilon(1.0), std::logic_error);
}

TEST(Accountant, RejectsBadAlpha)
{
    const RdpAccountant acc(1.0, 0.01);
    EXPECT_THROW(acc.rdpSingleStep(1), std::logic_error);
}

TEST(Accountant, CalibrationHitsTarget)
{
    const double q = 256.0 / 60000.0;
    const int steps = 10000;
    const double sigma =
        RdpAccountant::calibrateNoiseMultiplier(3.0, 1e-5, q, steps);
    RdpAccountant check(sigma, q);
    check.addSteps(steps);
    EXPECT_LE(check.epsilon(1e-5), 3.0);
    // Slightly less noise must blow the budget (tight calibration).
    RdpAccountant under(sigma * 0.95, q);
    under.addSteps(steps);
    EXPECT_GT(under.epsilon(1e-5), 3.0);
}

TEST(Accountant, CalibrationMonotonicInBudget)
{
    const double q = 0.01;
    const double strict =
        RdpAccountant::calibrateNoiseMultiplier(1.0, 1e-5, q, 1000);
    const double loose =
        RdpAccountant::calibrateNoiseMultiplier(8.0, 1e-5, q, 1000);
    EXPECT_GT(strict, loose);
}

TEST(Accountant, CalibrationRoundTripsAbadiSetting)
{
    // Inverse of the reference regime: asking for the epsilon that
    // sigma=1.1 yields should return sigma ~ 1.1.
    const double q = 256.0 / 60000.0;
    const int steps = 60 * 234;
    RdpAccountant acc(1.1, q);
    acc.addSteps(steps);
    const double eps = acc.epsilon(1e-5);
    const double sigma = RdpAccountant::calibrateNoiseMultiplier(
        eps, 1e-5, q, steps);
    EXPECT_NEAR(sigma, 1.1, 0.02);
}

TEST(Accountant, DefaultOrdersCoverWideRange)
{
    const auto orders = RdpAccountant::defaultOrders();
    EXPECT_EQ(orders.front(), 2);
    EXPECT_EQ(orders.back(), 256);
    EXPECT_GT(orders.size(), 50u);
}

} // namespace
} // namespace diva
