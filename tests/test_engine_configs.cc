/**
 * @file
 * Parameterized config-space sweep: the engine models' invariants must
 * hold across PE-array aspect ratios, drain rates and dataflows, not
 * just at the default 128x128 design point.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "arch/accelerator_config.h"
#include "gemm/engine.h"
#include "models/zoo.h"
#include "sim/executor.h"
#include "train/planner.h"

namespace diva
{
namespace
{

using ConfigParam = std::tuple<int /*rows*/, int /*cols*/,
                               int /*drain*/, int /*dataflow*/>;

class ConfigSweep : public ::testing::TestWithParam<ConfigParam>
{
  protected:
    void
    SetUp() override
    {
        const auto [rows, cols, drain, df] = GetParam();
        switch (df) {
          case 0: cfg_ = tpuV3Ws(); break;
          case 1: cfg_ = systolicOs(true); break;
          default: cfg_ = divaDefault(true); break;
        }
        cfg_.peRows = rows;
        cfg_.peCols = cols;
        cfg_.drainRowsPerCycle = std::min(drain, rows);
    }

    AcceleratorConfig cfg_;
};

TEST_P(ConfigSweep, ConfigValidates)
{
    EXPECT_NO_THROW(cfg_.validate());
}

TEST_P(ConfigSweep, GemmInvariantsHold)
{
    const auto engine = GemmEngineModel::create(cfg_);
    const GemmShape shapes[] = {
        {1, 1, 1}, {100, 3, 700}, {4096, 1, 64}, {128, 2048, 128},
    };
    for (const auto &s : shapes) {
        const GemmResult r = engine->simulate(s);
        EXPECT_GT(r.cycles, 0u) << cfg_.name << " " << s.str();
        EXPECT_EQ(r.usefulMacs, s.macs());
        EXPECT_LE(r.utilization(cfg_), 1.0)
            << cfg_.name << " " << s.str();
        // Compute occupancy can never beat peak throughput.
        EXPECT_GE(r.computeCycles,
                  Cycles(ceilDiv(s.macs(), Macs(cfg_.macsPerCycle()))));
    }
}

TEST_P(ConfigSweep, IterationSimulatesEndToEnd)
{
    const SimResult r = Executor(cfg_).run(
        buildOpStream(mobilenet(), TrainingAlgorithm::kDpSgdR, 8));
    EXPECT_GT(r.totalCycles(), 0u);
    EXPECT_LE(r.overallUtilization(cfg_), 1.0);
    EXPECT_GT(r.totalDram().total(), 0u);
}

std::string
configSweepName(const ::testing::TestParamInfo<ConfigParam> &info)
{
    const char *names[] = {"ws", "os", "outer"};
    return std::string(names[std::get<3>(info.param)]) + "_" +
           std::to_string(std::get<0>(info.param)) + "x" +
           std::to_string(std::get<1>(info.param)) + "_r" +
           std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConfigSweep,
    ::testing::Combine(::testing::Values(32, 128, 256),
                       ::testing::Values(64, 128),
                       ::testing::Values(1, 8, 32),
                       ::testing::Values(0, 1, 2)),
    configSweepName);

} // namespace
} // namespace diva
