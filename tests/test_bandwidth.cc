/**
 * @file
 * Tests for the Table-I SRAM bandwidth requirement model.
 */

#include <gtest/gtest.h>

#include "arch/accelerator_config.h"
#include "gemm/bandwidth.h"

namespace diva
{
namespace
{

TEST(SramBandwidth, WsMatchesTableI)
{
    const AcceleratorConfig cfg = tpuV3Ws();
    const SramBandwidth bw = sramBandwidthRequirement(cfg);
    // Table I: LHS = PE_H * 2B; RHS = PE_W * 8 * 2B; out = PE_W * 4B.
    EXPECT_EQ(bw.inputLhs, 128u * 2);
    EXPECT_EQ(bw.inputRhs, 128u * 8 * 2);
    EXPECT_EQ(bw.output, 128u * 4);
    // Total: (2*PE_H + 20*PE_W) B = 2816 B/clock for 128x128.
    EXPECT_EQ(bw.total(), Bytes(2 * 128 + 20 * 128));
}

TEST(SramBandwidth, OsMatchesTableI)
{
    const SramBandwidth bw =
        sramBandwidthRequirement(systolicOs(false));
    EXPECT_EQ(bw.inputLhs, 128u * 2);
    EXPECT_EQ(bw.inputRhs, 128u * 2);
    EXPECT_EQ(bw.output, 128u * 8 * 4);
    // Total: (2*PE_H + 34*PE_W) B = 4608 B/clock for 128x128.
    EXPECT_EQ(bw.total(), Bytes(2 * 128 + 34 * 128));
}

TEST(SramBandwidth, OuterProductEqualsOs)
{
    // Section IV-D: outer-product bandwidth is no worse than OS.
    const SramBandwidth os = sramBandwidthRequirement(systolicOs(false));
    const SramBandwidth outer =
        sramBandwidthRequirement(divaDefault(false));
    EXPECT_EQ(outer.inputLhs, os.inputLhs);
    EXPECT_EQ(outer.inputRhs, os.inputRhs);
    EXPECT_EQ(outer.output, os.output);
}

TEST(SramBandwidth, OsClassNeedsMoreOutputFewerInputPorts)
{
    const SramBandwidth ws = sramBandwidthRequirement(tpuV3Ws());
    const SramBandwidth outer =
        sramBandwidthRequirement(divaDefault(false));
    EXPECT_GT(outer.output, ws.output);
    EXPECT_LT(outer.inputRhs, ws.inputRhs);
}

TEST(SramBandwidth, ScalesWithArrayGeometry)
{
    AcceleratorConfig cfg = divaDefault(false);
    cfg.peRows = 256;
    cfg.peCols = 64;
    const SramBandwidth bw = sramBandwidthRequirement(cfg);
    EXPECT_EQ(bw.inputLhs, 256u * 2);
    EXPECT_EQ(bw.inputRhs, 64u * 2);
    EXPECT_EQ(bw.output, 64u * 8 * 4);
}

TEST(SramBandwidth, ScalesWithDrainRate)
{
    AcceleratorConfig cfg = divaDefault(false);
    cfg.drainRowsPerCycle = 16;
    const SramBandwidth bw = sramBandwidthRequirement(cfg);
    EXPECT_EQ(bw.output, 128u * 16 * 4);
}

} // namespace
} // namespace diva
