/**
 * @file
 * Unit tests for the accelerator configuration presets and validation.
 */

#include <gtest/gtest.h>

#include "arch/accelerator_config.h"

namespace diva
{
namespace
{

TEST(AcceleratorConfig, TpuV3PresetMatchesTableII)
{
    const AcceleratorConfig cfg = tpuV3Ws();
    EXPECT_EQ(cfg.dataflow, Dataflow::kWeightStationary);
    EXPECT_EQ(cfg.peRows, 128);
    EXPECT_EQ(cfg.peCols, 128);
    EXPECT_DOUBLE_EQ(cfg.freqGhz, 0.94);
    EXPECT_EQ(cfg.sramBytes, 16_MiB);
    EXPECT_DOUBLE_EQ(cfg.dramBandwidthGBs, 450.0);
    EXPECT_EQ(cfg.dramLatencyCycles, 100u);
    EXPECT_FALSE(cfg.hasPpu);
    EXPECT_NO_THROW(cfg.validate());
}

TEST(AcceleratorConfig, DivaPresetHasPpuAndOuterProduct)
{
    const AcceleratorConfig cfg = divaDefault();
    EXPECT_EQ(cfg.dataflow, Dataflow::kOuterProduct);
    EXPECT_TRUE(cfg.hasPpu);
    EXPECT_NO_THROW(cfg.validate());
}

TEST(AcceleratorConfig, DivaWithoutPpu)
{
    const AcceleratorConfig cfg = divaDefault(false);
    EXPECT_FALSE(cfg.hasPpu);
    EXPECT_EQ(cfg.name, "DiVa-noPPU");
}

TEST(AcceleratorConfig, OsPresetRespectsPpuFlag)
{
    EXPECT_TRUE(systolicOs(true).hasPpu);
    EXPECT_FALSE(systolicOs(false).hasPpu);
    EXPECT_EQ(systolicOs(true).dataflow, Dataflow::kOutputStationary);
}

TEST(AcceleratorConfig, PeakMacsAndTflops)
{
    const AcceleratorConfig cfg = divaDefault();
    EXPECT_EQ(cfg.macsPerCycle(), 128u * 128u);
    // Table III: 16384 MACs at 940 MHz = 2*16384*0.94e9 = 30.8 TFLOPS
    // (the paper quotes 29.5 with slightly different rounding).
    EXPECT_NEAR(cfg.peakTflops(), 30.8, 0.1);
}

TEST(AcceleratorConfig, DramBytesPerCycle)
{
    const AcceleratorConfig cfg = tpuV3Ws();
    // 450 GB/s at 0.94 GHz ~ 478.7 B/cycle.
    EXPECT_NEAR(cfg.dramBytesPerCycle(), 478.7, 0.1);
}

TEST(AcceleratorConfig, CyclesToSeconds)
{
    const AcceleratorConfig cfg = tpuV3Ws();
    EXPECT_NEAR(cfg.cyclesToSeconds(940'000'000), 1.0, 1e-9);
}

TEST(AcceleratorConfig, ValidateRejectsWsWithPpu)
{
    AcceleratorConfig cfg = tpuV3Ws();
    cfg.hasPpu = true;
    EXPECT_THROW(cfg.validate(), std::runtime_error);
}

TEST(AcceleratorConfig, ValidateRejectsBadGeometry)
{
    AcceleratorConfig cfg = divaDefault();
    cfg.peRows = 0;
    EXPECT_THROW(cfg.validate(), std::runtime_error);
}

TEST(AcceleratorConfig, ValidateRejectsBadDrainRate)
{
    AcceleratorConfig cfg = divaDefault();
    cfg.drainRowsPerCycle = cfg.peRows + 1;
    EXPECT_THROW(cfg.validate(), std::runtime_error);
    cfg.drainRowsPerCycle = 0;
    EXPECT_THROW(cfg.validate(), std::runtime_error);
}

TEST(AcceleratorConfig, ValidateRejectsZeroSram)
{
    AcceleratorConfig cfg = divaDefault();
    cfg.sramBytes = 0;
    EXPECT_THROW(cfg.validate(), std::runtime_error);
}

TEST(AcceleratorConfig, ValidateRejectsNegativeBandwidth)
{
    AcceleratorConfig cfg = divaDefault();
    cfg.dramBandwidthGBs = -1.0;
    EXPECT_THROW(cfg.validate(), std::runtime_error);
}

TEST(ConfigEquality, PresetsCompareEqualToThemselves)
{
    EXPECT_EQ(tpuV3Ws(), tpuV3Ws());
    EXPECT_EQ(divaDefault(true), divaDefault(true));
    EXPECT_NE(divaDefault(true), divaDefault(false));
    EXPECT_NE(tpuV3Ws(), systolicOs(false));
}

TEST(ConfigEquality, AnyFieldChangeBreaksEquality)
{
    const AcceleratorConfig base = divaDefault(true);
    AcceleratorConfig cfg = base;
    cfg.sramBytes = 32_MiB;
    EXPECT_NE(base, cfg);
    cfg = base;
    cfg.drainRowsPerCycle = 16;
    EXPECT_NE(base, cfg);
    cfg = base;
    cfg.name = "DiVa-renamed";
    EXPECT_NE(base, cfg);
}

TEST(ConfigHash, StableAcrossFieldAssignmentOrder)
{
    // Assign the same design point with fields written in two very
    // different orders: the hash is a pure function of field values
    // folded in a canonical sequence, so both must coincide.
    AcceleratorConfig a;
    a.name = "custom";
    a.dataflow = Dataflow::kOutputStationary;
    a.peRows = 64;
    a.peCols = 256;
    a.sramBytes = 8_MiB;
    a.dramBandwidthGBs = 900.0;
    a.hasPpu = true;
    a.drainRowsPerCycle = 4;

    AcceleratorConfig b;
    b.drainRowsPerCycle = 4;
    b.hasPpu = true;
    b.dramBandwidthGBs = 900.0;
    b.sramBytes = 8_MiB;
    b.peCols = 256;
    b.peRows = 64;
    b.dataflow = Dataflow::kOutputStationary;
    b.name = "custom";

    EXPECT_EQ(a, b);
    EXPECT_EQ(configHash(a), configHash(b));
}

TEST(ConfigHash, ConsistentWithEquality)
{
    EXPECT_EQ(configHash(tpuV3Ws()), configHash(tpuV3Ws()));
    EXPECT_EQ(configHash(divaDefault(true)),
              configHash(divaDefault(true)));
}

TEST(ConfigHash, SensitiveToEveryField)
{
    const AcceleratorConfig base = divaDefault(true);
    const std::size_t h = configHash(base);
    auto mutated = [&](auto &&mutate) {
        AcceleratorConfig cfg = base;
        mutate(cfg);
        return configHash(cfg);
    };
    EXPECT_NE(h, mutated([](auto &c) { c.name = "x"; }));
    EXPECT_NE(h, mutated([](auto &c) {
        c.dataflow = Dataflow::kOutputStationary;
    }));
    EXPECT_NE(h, mutated([](auto &c) { c.peRows = 64; }));
    EXPECT_NE(h, mutated([](auto &c) { c.peCols = 64; }));
    EXPECT_NE(h, mutated([](auto &c) { c.freqGhz = 1.0; }));
    EXPECT_NE(h, mutated([](auto &c) { c.sramBytes = 8_MiB; }));
    EXPECT_NE(h, mutated([](auto &c) { c.dramBandwidthGBs = 1.0; }));
    EXPECT_NE(h, mutated([](auto &c) { c.dramLatencyCycles = 7; }));
    EXPECT_NE(h, mutated([](auto &c) { c.weightFillRowsPerCycle = 1; }));
    EXPECT_NE(h, mutated([](auto &c) {
        c.wsDoubleBufferWeights = true;
    }));
    EXPECT_NE(h, mutated([](auto &c) { c.drainRowsPerCycle = 1; }));
    EXPECT_NE(h, mutated([](auto &c) { c.hasPpu = false; }));
    EXPECT_NE(h, mutated([](auto &c) { c.inputBytes = 4; }));
    EXPECT_NE(h, mutated([](auto &c) { c.accumBytes = 8; }));
    EXPECT_NE(h, mutated([](auto &c) { c.vectorLanes = 8; }));
}

TEST(DataflowName, AllNamed)
{
    EXPECT_STREQ(dataflowName(Dataflow::kWeightStationary), "WS");
    EXPECT_STREQ(dataflowName(Dataflow::kOutputStationary), "OS");
    EXPECT_STREQ(dataflowName(Dataflow::kOuterProduct), "DiVa");
}

} // namespace
} // namespace diva
