/**
 * @file
 * Unit tests for the accelerator configuration presets and validation.
 */

#include <gtest/gtest.h>

#include "arch/accelerator_config.h"

namespace diva
{
namespace
{

TEST(AcceleratorConfig, TpuV3PresetMatchesTableII)
{
    const AcceleratorConfig cfg = tpuV3Ws();
    EXPECT_EQ(cfg.dataflow, Dataflow::kWeightStationary);
    EXPECT_EQ(cfg.peRows, 128);
    EXPECT_EQ(cfg.peCols, 128);
    EXPECT_DOUBLE_EQ(cfg.freqGhz, 0.94);
    EXPECT_EQ(cfg.sramBytes, 16_MiB);
    EXPECT_DOUBLE_EQ(cfg.dramBandwidthGBs, 450.0);
    EXPECT_EQ(cfg.dramLatencyCycles, 100u);
    EXPECT_FALSE(cfg.hasPpu);
    EXPECT_NO_THROW(cfg.validate());
}

TEST(AcceleratorConfig, DivaPresetHasPpuAndOuterProduct)
{
    const AcceleratorConfig cfg = divaDefault();
    EXPECT_EQ(cfg.dataflow, Dataflow::kOuterProduct);
    EXPECT_TRUE(cfg.hasPpu);
    EXPECT_NO_THROW(cfg.validate());
}

TEST(AcceleratorConfig, DivaWithoutPpu)
{
    const AcceleratorConfig cfg = divaDefault(false);
    EXPECT_FALSE(cfg.hasPpu);
    EXPECT_EQ(cfg.name, "DiVa-noPPU");
}

TEST(AcceleratorConfig, OsPresetRespectsPpuFlag)
{
    EXPECT_TRUE(systolicOs(true).hasPpu);
    EXPECT_FALSE(systolicOs(false).hasPpu);
    EXPECT_EQ(systolicOs(true).dataflow, Dataflow::kOutputStationary);
}

TEST(AcceleratorConfig, PeakMacsAndTflops)
{
    const AcceleratorConfig cfg = divaDefault();
    EXPECT_EQ(cfg.macsPerCycle(), 128u * 128u);
    // Table III: 16384 MACs at 940 MHz = 2*16384*0.94e9 = 30.8 TFLOPS
    // (the paper quotes 29.5 with slightly different rounding).
    EXPECT_NEAR(cfg.peakTflops(), 30.8, 0.1);
}

TEST(AcceleratorConfig, DramBytesPerCycle)
{
    const AcceleratorConfig cfg = tpuV3Ws();
    // 450 GB/s at 0.94 GHz ~ 478.7 B/cycle.
    EXPECT_NEAR(cfg.dramBytesPerCycle(), 478.7, 0.1);
}

TEST(AcceleratorConfig, CyclesToSeconds)
{
    const AcceleratorConfig cfg = tpuV3Ws();
    EXPECT_NEAR(cfg.cyclesToSeconds(940'000'000), 1.0, 1e-9);
}

TEST(AcceleratorConfig, ValidateRejectsWsWithPpu)
{
    AcceleratorConfig cfg = tpuV3Ws();
    cfg.hasPpu = true;
    EXPECT_THROW(cfg.validate(), std::runtime_error);
}

TEST(AcceleratorConfig, ValidateRejectsBadGeometry)
{
    AcceleratorConfig cfg = divaDefault();
    cfg.peRows = 0;
    EXPECT_THROW(cfg.validate(), std::runtime_error);
}

TEST(AcceleratorConfig, ValidateRejectsBadDrainRate)
{
    AcceleratorConfig cfg = divaDefault();
    cfg.drainRowsPerCycle = cfg.peRows + 1;
    EXPECT_THROW(cfg.validate(), std::runtime_error);
    cfg.drainRowsPerCycle = 0;
    EXPECT_THROW(cfg.validate(), std::runtime_error);
}

TEST(AcceleratorConfig, ValidateRejectsZeroSram)
{
    AcceleratorConfig cfg = divaDefault();
    cfg.sramBytes = 0;
    EXPECT_THROW(cfg.validate(), std::runtime_error);
}

TEST(AcceleratorConfig, ValidateRejectsNegativeBandwidth)
{
    AcceleratorConfig cfg = divaDefault();
    cfg.dramBandwidthGBs = -1.0;
    EXPECT_THROW(cfg.validate(), std::runtime_error);
}

TEST(DataflowName, AllNamed)
{
    EXPECT_STREQ(dataflowName(Dataflow::kWeightStationary), "WS");
    EXPECT_STREQ(dataflowName(Dataflow::kOutputStationary), "OS");
    EXPECT_STREQ(dataflowName(Dataflow::kOuterProduct), "DiVa");
}

} // namespace
} // namespace diva
