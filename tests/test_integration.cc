/**
 * @file
 * Integration tests spanning planner -> executor -> energy across all
 * nine models, checking the paper's evaluation-level claims end to end
 * (Figures 13-16 shape properties).
 */

#include <gtest/gtest.h>

#include <tuple>

#include "arch/accelerator_config.h"
#include "energy/energy_model.h"
#include "models/zoo.h"
#include "sim/executor.h"
#include "train/memory_model.h"
#include "train/planner.h"

namespace diva
{
namespace
{

/** Figure-13 protocol: DP-SGD(R) at the DP-SGD-feasible batch. */
SimResult
runModel(const AcceleratorConfig &cfg, const Network &net,
         TrainingAlgorithm algo)
{
    const int batch = maxBatchSize(net, TrainingAlgorithm::kDpSgd,
                                   16_GiB);
    return Executor(cfg).run(buildOpStream(net, algo, batch));
}

class AllModelsIntegration : public ::testing::TestWithParam<int>
{
  protected:
    Network net_ = allModels()[std::size_t(GetParam())];
};

TEST_P(AllModelsIntegration, DivaSpeedsUpDpTraining)
{
    // Figure 13: DiVa with PPU beats WS on every model (avg 3.6x,
    // min above ~1.3x).
    const SimResult ws =
        runModel(tpuV3Ws(), net_, TrainingAlgorithm::kDpSgdR);
    const SimResult diva =
        runModel(divaDefault(true), net_, TrainingAlgorithm::kDpSgdR);
    EXPECT_GT(speedup(ws, diva), 1.2) << net_.name;
}

TEST_P(AllModelsIntegration, PpuAlwaysHelpsDiva)
{
    const SimResult no_ppu =
        runModel(divaDefault(false), net_, TrainingAlgorithm::kDpSgdR);
    const SimResult with_ppu =
        runModel(divaDefault(true), net_, TrainingAlgorithm::kDpSgdR);
    EXPECT_GE(speedup(no_ppu, with_ppu), 1.0) << net_.name;
}

TEST_P(AllModelsIntegration, PpuAlsoHelpsOsSystolic)
{
    // Section IV-C: the PPU applies to any OS-class dataflow.
    const SimResult no_ppu =
        runModel(systolicOs(false), net_, TrainingAlgorithm::kDpSgdR);
    const SimResult with_ppu =
        runModel(systolicOs(true), net_, TrainingAlgorithm::kDpSgdR);
    EXPECT_GT(speedup(no_ppu, with_ppu), 1.0) << net_.name;
}

TEST_P(AllModelsIntegration, DpSgdRCompetitiveWithVanillaOnWs)
{
    // Figure 5: DP-SGD(R) averages 31% faster than vanilla DP-SGD.
    // The win is not uniform -- on compute-bound models with tiny
    // weight sets (MobileNet) the second backprop can cost slightly
    // more than the clip/reduce it eliminates -- so we allow a small
    // regression but no blowup.
    const SimResult dp =
        runModel(tpuV3Ws(), net_, TrainingAlgorithm::kDpSgd);
    const SimResult dpr =
        runModel(tpuV3Ws(), net_, TrainingAlgorithm::kDpSgdR);
    EXPECT_LT(double(dpr.totalCycles()),
              1.1 * double(dp.totalCycles()))
        << net_.name;
}

TEST_P(AllModelsIntegration, BackpropDominatesDpTime)
{
    // Section III-B: backprop approaches ~99% of DP training time.
    const SimResult r =
        runModel(tpuV3Ws(), net_, TrainingAlgorithm::kDpSgdR);
    const double fwd_frac =
        double(r.stageCyclesFor(Stage::kForward)) /
        double(r.totalCycles());
    EXPECT_LT(fwd_frac, 0.35) << net_.name;
}

TEST_P(AllModelsIntegration, PostProcessingTrafficReduction)
{
    // The PPU's raison d'etre: per-model post-processing DRAM traffic
    // collapses (paper: 99% on average).
    const SimResult ws =
        runModel(tpuV3Ws(), net_, TrainingAlgorithm::kDpSgdR);
    const SimResult diva =
        runModel(divaDefault(true), net_, TrainingAlgorithm::kDpSgdR);
    ASSERT_GT(ws.postProcessingDram.total(), 0u) << net_.name;
    const double reduction =
        1.0 - double(diva.postProcessingDram.total()) /
                  double(ws.postProcessingDram.total());
    EXPECT_GT(reduction, 0.9) << net_.name;
}

TEST_P(AllModelsIntegration, EnergyEfficiencyImproves)
{
    // Figure 16: despite higher engine power, DiVa consumes less
    // energy per iteration than WS.
    const AcceleratorConfig ws_cfg = tpuV3Ws();
    const AcceleratorConfig dv_cfg = divaDefault(true);
    const double e_ws = EnergyModel::energy(
        runModel(ws_cfg, net_, TrainingAlgorithm::kDpSgdR), ws_cfg)
        .total();
    const double e_dv = EnergyModel::energy(
        runModel(dv_cfg, net_, TrainingAlgorithm::kDpSgdR), dv_cfg)
        .total();
    EXPECT_LT(e_dv, e_ws) << net_.name;
}

TEST_P(AllModelsIntegration, DivaNarrowsGapToNonPrivateSgd)
{
    // Figure 13: DiVa's DP-SGD(R) comes within a modest factor of
    // non-private SGD on WS (the paper reports reaching ~75% of its
    // performance on average; we accept up to a 4x residual gap).
    const SimResult sgd_ws =
        runModel(tpuV3Ws(), net_, TrainingAlgorithm::kSgd);
    const SimResult dp_diva =
        runModel(divaDefault(true), net_, TrainingAlgorithm::kDpSgdR);
    EXPECT_LT(double(dp_diva.totalCycles()),
              4.0 * double(sgd_ws.totalCycles()))
        << net_.name;
}

TEST_P(AllModelsIntegration, DivaSgdBeatsWsSgd)
{
    // Figure 13's DiVa-SGD observation: the outer-product engine also
    // helps non-private SGD (avg 1.6x in the paper).
    const SimResult ws =
        runModel(tpuV3Ws(), net_, TrainingAlgorithm::kSgd);
    const SimResult diva =
        runModel(divaDefault(true), net_, TrainingAlgorithm::kSgd);
    EXPECT_GE(speedup(ws, diva), 1.0) << net_.name;
}

INSTANTIATE_TEST_SUITE_P(NineModels, AllModelsIntegration,
                         ::testing::Range(0, 9),
                         [](const auto &info) {
                             std::string n =
                                 allModels()[std::size_t(info.param)]
                                     .name;
                             for (auto &c : n)
                                 if (c == '-')
                                     c = '_';
                             return n;
                         });

TEST(Sensitivity, LargerImagesShrinkDivaAdvantage)
{
    // Section VI-C: bigger inputs populate systolic arrays better, so
    // DiVa's speedup decreases monotonically (3.6x -> 2.1x -> 1.7x).
    double prev = 1e9;
    for (int size : {32, 64, 128}) {
        const Network net = resnet50(size);
        const int batch = std::max(
            1, maxBatchSize(net, TrainingAlgorithm::kDpSgd, 16_GiB));
        const OpStream stream =
            buildOpStream(net, TrainingAlgorithm::kDpSgdR, batch);
        const SimResult ws = Executor(tpuV3Ws()).run(stream);
        const SimResult dv = Executor(divaDefault(true)).run(stream);
        const double s = speedup(ws, dv);
        EXPECT_GT(s, 1.0) << size;
        EXPECT_LE(s, prev * 1.05) << size;
        prev = s;
    }
}

TEST(Sensitivity, LongerSequencesShrinkDivaAdvantage)
{
    double prev = 1e9;
    for (int len : {32, 64, 128, 256}) {
        const Network net = bertBase(len);
        const int batch = std::max(
            1, maxBatchSize(net, TrainingAlgorithm::kDpSgd, 16_GiB));
        const OpStream stream =
            buildOpStream(net, TrainingAlgorithm::kDpSgdR, batch);
        const SimResult ws = Executor(tpuV3Ws()).run(stream);
        const SimResult dv = Executor(divaDefault(true)).run(stream);
        const double s = speedup(ws, dv);
        EXPECT_GT(s, 1.0) << len;
        EXPECT_LE(s, prev * 1.05) << len;
        prev = s;
    }
}

TEST(Ablation, MoreDrainRowsNeverHurt)
{
    const Network net = resnet50();
    const OpStream stream =
        buildOpStream(net, TrainingAlgorithm::kDpSgdR, 64);
    Cycles prev = Cycles(-1);
    for (int r : {1, 2, 4, 8, 16}) {
        AcceleratorConfig cfg = divaDefault(true);
        cfg.drainRowsPerCycle = r;
        const Cycles c = Executor(cfg).run(stream).totalCycles();
        EXPECT_LE(c, prev) << "R=" << r;
        prev = c;
    }
}

TEST(Ablation, MoreBandwidthNeverHurts)
{
    const Network net = bertBase();
    const OpStream stream =
        buildOpStream(net, TrainingAlgorithm::kDpSgdR, 8);
    Cycles prev = Cycles(-1);
    for (double bw : {225.0, 450.0, 900.0, 1800.0}) {
        AcceleratorConfig cfg = tpuV3Ws();
        cfg.dramBandwidthGBs = bw;
        const Cycles c = Executor(cfg).run(stream).totalCycles();
        EXPECT_LE(c, prev) << "bw=" << bw;
        prev = c;
    }
}

} // namespace
} // namespace diva
