/**
 * @file
 * Tests for the Linear layer and MLP: gradient correctness against
 * finite differences, per-example vs per-batch consistency, and the
 * rank-1 norm shortcut.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "dp/mlp.h"
#include "dp/ops.h"

namespace diva
{
namespace
{

TEST(Linear, ForwardAppliesBias)
{
    Rng rng(1);
    Linear l(3, 2, rng);
    l.bias().at(0, 0) = 10.0f;
    Tensor x(1, 3); // zeros
    const Tensor y = l.forward(x);
    EXPECT_FLOAT_EQ(y.at(0, 0), 10.0f);
    EXPECT_FLOAT_EQ(y.at(0, 1), 0.0f);
}

TEST(Linear, PerBatchGradEqualsSumOfPerExample)
{
    Rng rng(2);
    Linear l(6, 4, rng);
    const Tensor x = Tensor::randn(5, 6, rng, 1.0);
    const Tensor gy = Tensor::randn(5, 4, rng, 1.0);

    Tensor dw_batch, db_batch;
    l.perBatchGrad(x, gy, dw_batch, db_batch);

    Tensor dw_sum(6, 4), db_sum(1, 4);
    Tensor dw_i, db_i;
    for (std::int64_t i = 0; i < 5; ++i) {
        l.perExampleGrad(x, gy, i, dw_i, db_i);
        dw_sum.add(dw_i);
        db_sum.add(db_i);
    }
    EXPECT_LT(dw_batch.maxAbsDiff(dw_sum), 1e-5);
    EXPECT_LT(db_batch.maxAbsDiff(db_sum), 1e-5);
}

TEST(Linear, NormShortcutMatchesMaterializedNorm)
{
    // The Lee & Kifer identity: ||x g^T||_F^2 = ||x||^2 ||g||^2.
    Rng rng(3);
    Linear l(8, 5, rng);
    const Tensor x = Tensor::randn(4, 8, rng, 1.0);
    const Tensor gy = Tensor::randn(4, 5, rng, 1.0);
    Tensor dw, db;
    for (std::int64_t i = 0; i < 4; ++i) {
        l.perExampleGrad(x, gy, i, dw, db);
        const double materialized = dw.l2NormSq() + db.l2NormSq();
        const double shortcut = l.perExampleGradNormSq(x, gy, i);
        EXPECT_NEAR(shortcut, materialized,
                    1e-5 * std::max(1.0, materialized));
    }
}

TEST(Mlp, RequiresAtLeastOneLayer)
{
    Rng rng(4);
    EXPECT_THROW(Mlp({5}, rng), std::logic_error);
}

TEST(Mlp, ForwardShapes)
{
    Rng rng(5);
    const Mlp mlp({8, 16, 4}, rng);
    const Tensor x = Tensor::randn(3, 8, rng, 1.0);
    const Tensor logits = mlp.forward(x);
    EXPECT_EQ(logits.rows(), 3);
    EXPECT_EQ(logits.cols(), 4);
    EXPECT_EQ(mlp.paramCount(), 8 * 16 + 16 + 16 * 4 + 4);
}

TEST(Mlp, CachePopulated)
{
    Rng rng(6);
    const Mlp mlp({4, 8, 3}, rng);
    const Tensor x = Tensor::randn(2, 4, rng, 1.0);
    Mlp::Cache cache;
    mlp.forward(x, &cache);
    ASSERT_EQ(cache.inputs.size(), 2u);
    ASSERT_EQ(cache.preacts.size(), 2u);
    EXPECT_EQ(cache.inputs[0].cols(), 4);
    EXPECT_EQ(cache.inputs[1].cols(), 8);
    EXPECT_EQ(cache.logits.cols(), 3);
    // Hidden input is post-ReLU: non-negative.
    for (std::int64_t i = 0; i < cache.inputs[1].size(); ++i)
        EXPECT_GE(cache.inputs[1][i], 0.0f);
}

TEST(Mlp, PerBatchGradEqualsSumOfPerExample)
{
    Rng rng(7);
    const Mlp mlp({6, 12, 5}, rng);
    const Tensor x = Tensor::randn(7, 6, rng, 1.0);
    std::vector<int> y;
    for (int i = 0; i < 7; ++i)
        y.push_back(i % 5);

    Mlp::Cache cache;
    Tensor dlogits;
    mlp.lossAndLogitGrad(x, y, cache, dlogits);

    MlpGrads batch = mlp.zeroGrads();
    mlp.backwardPerBatch(cache, dlogits, batch);

    MlpGrads sum = mlp.zeroGrads();
    MlpGrads ex = mlp.zeroGrads();
    for (std::int64_t i = 0; i < 7; ++i) {
        mlp.perExampleGrad(cache, dlogits, i, ex);
        sum.add(ex);
    }
    EXPECT_LT(batch.maxAbsDiff(sum), 1e-4);
}

TEST(Mlp, PerExampleNormShortcutMatchesMaterialized)
{
    Rng rng(8);
    const Mlp mlp({5, 9, 4}, rng);
    const Tensor x = Tensor::randn(6, 5, rng, 1.0);
    std::vector<int> y = {0, 1, 2, 3, 0, 1};
    Mlp::Cache cache;
    Tensor dlogits;
    mlp.lossAndLogitGrad(x, y, cache, dlogits);
    MlpGrads ex = mlp.zeroGrads();
    for (std::int64_t i = 0; i < 6; ++i) {
        mlp.perExampleGrad(cache, dlogits, i, ex);
        EXPECT_NEAR(mlp.perExampleGradNormSq(cache, dlogits, i),
                    ex.l2NormSq(), 1e-4 * std::max(1.0, ex.l2NormSq()));
    }
}

TEST(Mlp, GradientMatchesFiniteDifferences)
{
    Rng rng(9);
    Mlp mlp({4, 6, 3}, rng);
    const Tensor x = Tensor::randn(5, 4, rng, 1.0);
    const std::vector<int> y = {0, 1, 2, 0, 1};

    Mlp::Cache cache;
    Tensor dlogits;
    mlp.lossAndLogitGrad(x, y, cache, dlogits);
    MlpGrads grads = mlp.zeroGrads();
    mlp.backwardPerBatch(cache, dlogits, grads);

    // Check a sample of weight entries of each layer via central
    // differences on the total loss (mean * batch).
    const double eps = 1e-3;
    for (std::size_t l = 0; l < mlp.layers().size(); ++l) {
        Linear &layer = mlp.layersMutable()[l];
        for (std::int64_t idx : {std::int64_t(0), layer.weight().size() / 2,
                                 layer.weight().size() - 1}) {
            const float orig = layer.weight()[idx];
            Tensor g_unused;
            layer.weight()[idx] = float(orig + eps);
            const double fp =
                softmaxCrossEntropy(mlp.forward(x), y, g_unused) * 5;
            layer.weight()[idx] = float(orig - eps);
            const double fm =
                softmaxCrossEntropy(mlp.forward(x), y, g_unused) * 5;
            layer.weight()[idx] = orig;
            EXPECT_NEAR(grads.dw[l][idx], (fp - fm) / (2 * eps), 2e-2)
                << "layer " << l << " idx " << idx;
        }
    }
}

TEST(Mlp, ReweightedBackwardWithUnitWeightsEqualsPerBatch)
{
    Rng rng(10);
    const Mlp mlp({5, 7, 3}, rng);
    const Tensor x = Tensor::randn(4, 5, rng, 1.0);
    const std::vector<int> y = {0, 1, 2, 1};
    Mlp::Cache cache;
    Tensor dlogits;
    mlp.lossAndLogitGrad(x, y, cache, dlogits);

    MlpGrads a = mlp.zeroGrads();
    MlpGrads b = mlp.zeroGrads();
    mlp.backwardPerBatch(cache, dlogits, a);
    mlp.backwardReweighted(cache, dlogits, {1.0, 1.0, 1.0, 1.0}, b);
    EXPECT_LT(a.maxAbsDiff(b), 1e-6);
}

TEST(Mlp, ReweightedBackwardEqualsWeightedSum)
{
    Rng rng(11);
    const Mlp mlp({6, 8, 4}, rng);
    const Tensor x = Tensor::randn(5, 6, rng, 1.0);
    const std::vector<int> y = {3, 1, 0, 2, 1};
    Mlp::Cache cache;
    Tensor dlogits;
    mlp.lossAndLogitGrad(x, y, cache, dlogits);

    const std::vector<double> w = {0.5, 1.0, 0.25, 0.0, 2.0};
    MlpGrads fused = mlp.zeroGrads();
    mlp.backwardReweighted(cache, dlogits, w, fused);

    MlpGrads manual = mlp.zeroGrads();
    MlpGrads ex = mlp.zeroGrads();
    for (std::int64_t i = 0; i < 5; ++i) {
        mlp.perExampleGrad(cache, dlogits, i, ex);
        manual.addScaled(ex, w[std::size_t(i)]);
    }
    EXPECT_LT(fused.maxAbsDiff(manual), 1e-4);
}

TEST(Mlp, UpdateMovesParametersDownhill)
{
    Rng rng(12);
    Mlp mlp({4, 8, 2}, rng);
    Rng data_rng(13);
    const Tensor x = Tensor::randn(16, 4, data_rng, 1.0);
    std::vector<int> y;
    for (int i = 0; i < 16; ++i)
        y.push_back(x.at(i, 0) > 0 ? 1 : 0);

    Mlp::Cache cache;
    Tensor dlogits;
    const double loss0 = mlp.lossAndLogitGrad(x, y, cache, dlogits);
    MlpGrads grads = mlp.zeroGrads();
    mlp.backwardPerBatch(cache, dlogits, grads);
    grads.scale(1.0 / 16.0);
    mlp.applyUpdate(grads, 0.5);
    const double loss1 = mlp.lossAndLogitGrad(x, y, cache, dlogits);
    EXPECT_LT(loss1, loss0);
}

TEST(MlpGrads, NormAndScale)
{
    Rng rng(14);
    const Mlp mlp({3, 4, 2}, rng);
    MlpGrads g = mlp.zeroGrads();
    g.dw[0].at(0, 0) = 3.0f;
    g.db[1].at(0, 1) = 4.0f;
    EXPECT_DOUBLE_EQ(g.l2NormSq(), 25.0);
    g.scale(2.0);
    EXPECT_DOUBLE_EQ(g.l2NormSq(), 100.0);
    g.setZero();
    EXPECT_DOUBLE_EQ(g.l2NormSq(), 0.0);
}

} // namespace
} // namespace diva
