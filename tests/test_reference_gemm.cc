/**
 * @file
 * Property tests validating the outer-product dataflow mathematics:
 * inner-product, outer-product and tiled outer-product loop orders must
 * agree on the same operands (Figure 9(a)).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "gemm/reference_gemm.h"

namespace diva
{
namespace
{

std::vector<float>
randomMatrix(std::int64_t rows, std::int64_t cols, Rng &rng)
{
    std::vector<float> m(std::size_t(rows) * std::size_t(cols));
    for (auto &v : m)
        v = float(rng.uniform(-1.0, 1.0));
    return m;
}

double
maxDiff(const std::vector<float> &a, const std::vector<float> &b)
{
    EXPECT_EQ(a.size(), b.size());
    double best = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        best = std::max(best, std::abs(double(a[i]) - double(b[i])));
    return best;
}

TEST(ReferenceGemm, TinyKnownResult)
{
    // [1 2] [5 6]   [19 22]
    // [3 4] [7 8] = [43 50]
    const GemmShape s(2, 2, 2);
    const std::vector<float> a = {1, 2, 3, 4};
    const std::vector<float> b = {5, 6, 7, 8};
    const auto c = gemmInnerProduct(s, a, b);
    EXPECT_FLOAT_EQ(c[0], 19);
    EXPECT_FLOAT_EQ(c[1], 22);
    EXPECT_FLOAT_EQ(c[2], 43);
    EXPECT_FLOAT_EQ(c[3], 50);
}

TEST(ReferenceGemm, OuterProductMatchesKnownResult)
{
    const GemmShape s(2, 2, 2);
    const std::vector<float> a = {1, 2, 3, 4};
    const std::vector<float> b = {5, 6, 7, 8};
    const auto c = gemmOuterProduct(s, a, b);
    EXPECT_FLOAT_EQ(c[0], 19);
    EXPECT_FLOAT_EQ(c[3], 50);
}

TEST(ReferenceGemm, RejectsMismatchedOperands)
{
    const GemmShape s(2, 3, 2);
    const std::vector<float> a(5);  // should be 6
    const std::vector<float> b(6);
    EXPECT_THROW(gemmInnerProduct(s, a, b), std::logic_error);
}

/** Shape sweep: (M, K, N) including the DP-SGD pathological K=1. */
class GemmEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(GemmEquivalence, OuterEqualsInner)
{
    const auto [m, k, n] = GetParam();
    const GemmShape s(m, k, n);
    Rng rng(std::uint64_t(m * 10007 + k * 101 + n));
    const auto a = randomMatrix(m, k, rng);
    const auto b = randomMatrix(k, n, rng);
    const auto inner = gemmInnerProduct(s, a, b);
    const auto outer = gemmOuterProduct(s, a, b);
    EXPECT_LT(maxDiff(inner, outer), 1e-4)
        << "shape " << s.str();
}

TEST_P(GemmEquivalence, TiledOuterEqualsInner)
{
    const auto [m, k, n] = GetParam();
    const GemmShape s(m, k, n);
    Rng rng(std::uint64_t(m * 7 + k * 11 + n * 13));
    const auto a = randomMatrix(m, k, rng);
    const auto b = randomMatrix(k, n, rng);
    const auto inner = gemmInnerProduct(s, a, b);
    // Hardware-like 8x8 output tiles.
    const auto tiled = gemmTiledOuterProduct(s, a, b, 8, 8);
    EXPECT_LT(maxDiff(inner, tiled), 1e-4)
        << "shape " << s.str();
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmEquivalence,
    ::testing::Values(
        std::make_tuple(1, 1, 1), std::make_tuple(4, 1, 4),
        std::make_tuple(16, 1, 16), std::make_tuple(33, 1, 65),
        std::make_tuple(7, 3, 5), std::make_tuple(8, 8, 8),
        std::make_tuple(31, 17, 9), std::make_tuple(64, 2, 64),
        std::make_tuple(5, 64, 5), std::make_tuple(1, 32, 1),
        std::make_tuple(40, 40, 40), std::make_tuple(128, 4, 32)));

TEST(ReferenceGemm, TiledWithOversizeTilesEqualsUntiled)
{
    const GemmShape s(20, 6, 24);
    Rng rng(99);
    const auto a = randomMatrix(s.m, s.k, rng);
    const auto b = randomMatrix(s.k, s.n, rng);
    const auto whole = gemmTiledOuterProduct(s, a, b, 1024, 1024);
    const auto outer = gemmOuterProduct(s, a, b);
    EXPECT_LT(maxDiff(whole, outer), 1e-5);
}

} // namespace
} // namespace diva
