/**
 * @file
 * Tests for the model summary printer and the GEMM shape statistics
 * (the quantified form of Section III-C's small-K diagnosis).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "gemm/shape_stats.h"
#include "models/summary.h"
#include "models/zoo.h"
#include "train/planner.h"

namespace diva
{
namespace
{

TEST(Summary, LayerKindNames)
{
    EXPECT_STREQ(layerKindName(LayerKind::kConv2d), "conv2d");
    EXPECT_STREQ(layerKindName(LayerKind::kDepthwiseConv2d),
                 "dwconv2d");
    EXPECT_STREQ(layerKindName(LayerKind::kLinear), "linear");
    EXPECT_STREQ(layerKindName(LayerKind::kTimeSeriesLinear),
                 "ts-linear");
    EXPECT_STREQ(layerKindName(LayerKind::kAttentionMatmul),
                 "attention");
    EXPECT_STREQ(layerKindName(LayerKind::kPool), "pool");
}

TEST(Summary, GeometryStrings)
{
    const Layer conv = Layer::conv2d("c", 3, 64, 3, 3, 2, 1, 32, 32);
    EXPECT_EQ(layerGeometry(conv), "3x3 s2 3->64 @32x32");
    const Layer fc = Layer::linear("f", 128, 10);
    EXPECT_EQ(layerGeometry(fc), "128->10");
    const Layer ts = Layer::timeSeriesLinear("t", 64, 256, 8, true);
    EXPECT_EQ(layerGeometry(ts), "64->256 L8 seq");
    const Layer att = Layer::attentionScores("a", 12, 64, 32);
    EXPECT_EQ(layerGeometry(att), "12h d64 L32");
}

TEST(Summary, PrintsEveryLayerAndTotals)
{
    std::ostringstream oss;
    const Network net = resnet50();
    printModelSummary(oss, net, 32);
    const std::string out = oss.str();
    EXPECT_NE(out.find("ResNet-50"), std::string::npos);
    EXPECT_NE(out.find("conv1"), std::string::npos);
    EXPECT_NE(out.find("layer4.2.conv3"), std::string::npos);
    EXPECT_NE(out.find(std::to_string(net.paramCount())),
              std::string::npos);
}

TEST(ShapeStats, BucketBoundaries)
{
    EXPECT_EQ(KDimHistogram::bucketFor(1), 0u);
    EXPECT_EQ(KDimHistogram::bucketFor(2), 1u);
    EXPECT_EQ(KDimHistogram::bucketFor(8), 1u);
    EXPECT_EQ(KDimHistogram::bucketFor(32), 2u);
    EXPECT_EQ(KDimHistogram::bucketFor(128), 3u);
    EXPECT_EQ(KDimHistogram::bucketFor(512), 4u);
    EXPECT_EQ(KDimHistogram::bucketFor(513), 5u);
    EXPECT_STREQ(KDimHistogram::bucketLabel(0), "K=1");
    EXPECT_STREQ(KDimHistogram::bucketLabel(5), "K>512");
}

TEST(ShapeStats, SgdHasFewSmallKGemms)
{
    // Non-private SGD on an MLP-free CNN: weight-grad GEMMs carry
    // B*P*Q in K, so small-K GEMMs are rare.
    const ShapeStats stats = collectShapeStats(
        buildOpStream(resnet50(), TrainingAlgorithm::kSgd, 64));
    EXPECT_LT(stats.smallKFraction(), 0.2);
}

TEST(ShapeStats, DpSgdFloodsStreamWithSmallK)
{
    // Section III-C quantified: the per-example wgrad GEMMs dominate
    // the GEMM count and sit in the small-K buckets.
    const ShapeStats sgd = collectShapeStats(
        buildOpStream(vgg16(), TrainingAlgorithm::kSgd, 64));
    const ShapeStats dp = collectShapeStats(
        buildOpStream(vgg16(), TrainingAlgorithm::kDpSgd, 64));
    EXPECT_GT(dp.totalGemms, sgd.totalGemms);
    EXPECT_GT(dp.smallKFraction(), sgd.smallKFraction());
}

TEST(ShapeStats, MlpPerExampleGemmsAreAllK1)
{
    Network net;
    net.name = "mlp";
    net.inputElemsPerExample = 64;
    net.layers.push_back(Layer::linear("fc1", 64, 128));
    net.layers.push_back(Layer::linear("fc2", 128, 10));
    const ShapeStats stats = collectShapeStats(
        buildOpStream(net, TrainingAlgorithm::kDpSgd, 16));
    // Every per-example GEMM of a plain MLP has K = 1 (Figure 6).
    EXPECT_EQ(stats.perExample.counts[0],
              stats.perExample.totalGemms);
    EXPECT_EQ(stats.perExample.totalGemms, 2u * 16u);
}

TEST(ShapeStats, PerExampleCountScalesWithBatch)
{
    const ShapeStats b16 = collectShapeStats(
        buildOpStream(resnet50(), TrainingAlgorithm::kDpSgdR, 16));
    const ShapeStats b64 = collectShapeStats(
        buildOpStream(resnet50(), TrainingAlgorithm::kDpSgdR, 64));
    EXPECT_EQ(b64.perExample.totalGemms, 4 * b16.perExample.totalGemms);
}

TEST(ShapeStats, CumulativeFractionMonotonic)
{
    const ShapeStats stats = collectShapeStats(
        buildOpStream(bertBase(), TrainingAlgorithm::kDpSgdR, 8));
    double prev = 0.0;
    for (std::size_t b = 0; b < KDimHistogram::kNumBuckets; ++b) {
        const double f = stats.all.cumulativeFraction(b);
        EXPECT_GE(f, prev);
        prev = f;
    }
    EXPECT_NEAR(prev, 1.0, 1e-12);
}

} // namespace
} // namespace diva
