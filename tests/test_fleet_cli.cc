/**
 * @file
 * End-to-end flag validation for the diva_fleet CLI: empty fleets,
 * zero-chip pods, unknown placement/policy names and malformed knobs
 * must fail with a clear non-zero exit, and good invocations
 * (homogeneous and heterogeneous fleets, rebalance, budgets, output
 * files) must succeed. ctest runs with the build directory as the
 * working directory, so the tool binary sits at ./diva_fleet; the
 * suite skips (rather than fails) when the tool was not built.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

namespace
{

bool
exists(const std::string &path)
{
    return std::ifstream(path).good();
}

/** Run a command with stdout/stderr dropped; -1 if system() failed. */
int
runQuiet(const std::string &cmd)
{
    const int status = std::system((cmd + " >/dev/null 2>&1").c_str());
    if (status == -1)
        return -1;
#ifdef WEXITSTATUS
    return WEXITSTATUS(status);
#else
    return status;
#endif
}

class FleetCli : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        if (!exists("./diva_fleet"))
            GTEST_SKIP() << "tool binary not built";
    }
};

const char kSmallTrace[] =
    "--arrivals poisson:rate=8,horizon=2,seed=3,qos=2,cap=24";

TEST_F(FleetCli, GoodInvocationsSucceed)
{
    EXPECT_EQ(runQuiet(std::string("./diva_fleet --pods 2 --quiet ") +
                       kSmallTrace),
              0);
    // Heterogeneous fleet with rebalance, budget, and output files.
    const std::string csv = "fleet_cli.csv";
    const std::string pod_csv = "fleet_cli_pods.csv";
    const std::string json = "fleet_cli.json";
    EXPECT_EQ(runQuiet(std::string("./diva_fleet --pod df=DiVa,count=2 "
                                   "--pod df=OS --placement energy "
                                   "--policy edf --rebalance-every 0.5 "
                                   "--power-cap-w 500 --working-set 0.5 "
                                   "--quiet --no-summary ") +
                       kSmallTrace + " --csv " + csv + " --pod-csv " +
                       pod_csv + " --json " + json + " --json-tenants"),
              0);
    EXPECT_TRUE(exists(csv));
    EXPECT_TRUE(exists(pod_csv));
    EXPECT_TRUE(exists(json));
    std::remove(csv.c_str());
    std::remove(pod_csv.c_str());
    std::remove(json.c_str());
}

TEST_F(FleetCli, EmptyFleetsAndZeroChipPodsFail)
{
    EXPECT_NE(runQuiet("./diva_fleet --pods 0"), 0);
    EXPECT_NE(runQuiet("./diva_fleet --pods -4"), 0);
    EXPECT_NE(runQuiet("./diva_fleet --pod chips=0"), 0);
    EXPECT_NE(runQuiet("./diva_fleet --pod count=0"), 0);
    EXPECT_NE(runQuiet("./diva_fleet --pod df=bogus"), 0);
    EXPECT_NE(runQuiet("./diva_fleet --pod df=WS,ppu=on"), 0);
    EXPECT_NE(runQuiet("./diva_fleet --pod nonsense"), 0);
}

TEST_F(FleetCli, UnknownPolicyNamesFail)
{
    EXPECT_NE(runQuiet("./diva_fleet --placement bogus"), 0);
    EXPECT_NE(runQuiet("./diva_fleet --policy bogus"), 0);
    EXPECT_NE(runQuiet("./diva_fleet --backends bogus"), 0);
}

TEST_F(FleetCli, MalformedKnobsFail)
{
    EXPECT_NE(runQuiet("./diva_fleet --admission-cap 0"), 0);
    EXPECT_NE(runQuiet("./diva_fleet --rebalance-every -1"), 0);
    EXPECT_NE(runQuiet("./diva_fleet --skew 0"), 0);
    EXPECT_NE(runQuiet("./diva_fleet --max-migrations 0"), 0);
    EXPECT_NE(runQuiet("./diva_fleet --power-cap-w 0"), 0);
    EXPECT_NE(runQuiet("./diva_fleet --budget-j -5"), 0);
    EXPECT_NE(runQuiet("./diva_fleet --working-set 0"), 0);
    EXPECT_NE(runQuiet("./diva_fleet --working-set 1.5"), 0);
    EXPECT_NE(runQuiet("./diva_fleet --quantum 0"), 0);
    EXPECT_NE(runQuiet("./diva_fleet --wall-s 0"), 0);
    EXPECT_NE(runQuiet("./diva_fleet --threads 0"), 0);
    EXPECT_NE(runQuiet("./diva_fleet --no-such-flag"), 0);
    EXPECT_NE(runQuiet("./diva_fleet --placement"), 0);
}

TEST_F(FleetCli, TraceFlagsValidate)
{
    EXPECT_NE(runQuiet("./diva_fleet --arrivals zipf:rate=2"), 0);
    EXPECT_NE(runQuiet("./diva_fleet --arrivals poisson:rate=0"), 0);
    EXPECT_NE(
        runQuiet("./diva_fleet --arrivals poisson --trace x.csv"), 0);
    EXPECT_NE(runQuiet("./diva_fleet --trace /no/such/file.csv"), 0);

    // A recorded trace with departure-before-arrival fails at replay
    // (exit 2: the run itself reports the error).
    const std::string path = "fleet_cli_bad_trace.csv";
    {
        std::ofstream out(path);
        out << "model,arrival_s,depart_s,steps\n"
            << "SqueezeNet,5,2,4\n";
    }
    EXPECT_NE(runQuiet("./diva_fleet --trace " + path + " --quiet"), 0);
    std::remove(path.c_str());
}

TEST_F(FleetCli, ObservabilityFlagsValidateAtStartup)
{
    // Unwritable output paths must fail fast, before the run.
    const std::string base =
        std::string("./diva_fleet --pods 1 --quiet ") + kSmallTrace;
    EXPECT_NE(runQuiet(base + " --metrics-out /no/such/dir/m.json"),
              0);
    EXPECT_NE(runQuiet(base + " --trace-out /no/such/dir/t.json"), 0);
    EXPECT_NE(
        runQuiet(base + " --timeseries-out /no/such/dir/ts.json"), 0);

    // Malformed telemetry knobs fail at parse time.
    EXPECT_NE(runQuiet(base + " --obs-window-s 0"), 0);
    EXPECT_NE(runQuiet(base + " --obs-window-s -1"), 0);
    EXPECT_NE(runQuiet(base + " --slo-p99-s nonsense"), 0);
    EXPECT_NE(runQuiet(base + " --slo-p99-s 1:0.2,1:0.3"), 0);

    // A good telemetry invocation succeeds and writes the document.
    const std::string ts = "fleet_cli_ts.json";
    EXPECT_EQ(runQuiet(base + " --timeseries-out " + ts +
                       " --obs-window-s 0.25 --slo-p99-s 0.5,1:0.2"),
              0);
    EXPECT_TRUE(exists(ts));
    std::remove(ts.c_str());
}

TEST_F(FleetCli, SavedTraceReplaysIdentically)
{
    // --save-trace writes the canonical CSV; replaying that file must
    // reproduce the generated run's per-pod CSV byte for byte.
    const std::string trace_csv = "fleet_cli_trace.csv";
    const std::string a = "fleet_cli_a.csv";
    const std::string b = "fleet_cli_b.csv";
    ASSERT_EQ(runQuiet(std::string("./diva_fleet --pods 2 --quiet "
                                   "--no-summary ") +
                       kSmallTrace + " --save-trace " + trace_csv +
                       " --pod-csv " + a),
              0);
    ASSERT_EQ(runQuiet("./diva_fleet --pods 2 --quiet --no-summary "
                       "--trace " +
                       trace_csv + " --pod-csv " + b),
              0);
    std::ifstream fa(a), fb(b);
    std::string sa((std::istreambuf_iterator<char>(fa)),
                   std::istreambuf_iterator<char>());
    std::string sb((std::istreambuf_iterator<char>(fb)),
                   std::istreambuf_iterator<char>());
    EXPECT_FALSE(sa.empty());
    EXPECT_EQ(sa, sb);
    std::remove(trace_csv.c_str());
    std::remove(a.c_str());
    std::remove(b.c_str());
}

} // namespace
