/**
 * @file
 * Deep structural checks of the model zoo: spatial propagation,
 * per-stage channel schedules and GEMM totals for each benchmark
 * network, guarding the builders against silent drift.
 */

#include <gtest/gtest.h>

#include <map>

#include "models/zoo.h"

namespace diva
{
namespace
{

const Layer *
findLayer(const Network &net, const std::string &name)
{
    for (const auto &l : net.layers)
        if (l.name == name)
            return &l;
    return nullptr;
}

TEST(ZooStructure, Vgg16BlocksAndPools)
{
    const Network net = vgg16();
    // 13 convs + 5 pools + 3 FCs.
    int convs = 0, pools = 0, fcs = 0;
    for (const auto &l : net.layers) {
        convs += l.kind == LayerKind::kConv2d ? 1 : 0;
        pools += l.kind == LayerKind::kPool ? 1 : 0;
        fcs += l.kind == LayerKind::kLinear ? 1 : 0;
    }
    EXPECT_EQ(convs, 13);
    EXPECT_EQ(pools, 5);
    EXPECT_EQ(fcs, 3);

    // 32x32 input: block5 convs run at 2x2.
    const Layer *b5 = findLayer(net, "block5.conv1");
    ASSERT_NE(b5, nullptr);
    EXPECT_EQ(b5->inH, 2);
    EXPECT_EQ(b5->inChannels, 512);

    // The classifier head sees 512 x 1 x 1 after the fifth pool.
    const Layer *fc1 = findLayer(net, "fc1");
    ASSERT_NE(fc1, nullptr);
    EXPECT_EQ(fc1->inFeatures, 512);
    EXPECT_EQ(fc1->outFeatures, 4096);
}

TEST(ZooStructure, Vgg16ScalesWithImageSize)
{
    const Network net = vgg16(64);
    const Layer *fc1 = findLayer(net, "fc1");
    ASSERT_NE(fc1, nullptr);
    // 64/2^5 = 2 -> 512*2*2.
    EXPECT_EQ(fc1->inFeatures, 512 * 2 * 2);
}

TEST(ZooStructure, ResNet50StageChannels)
{
    const Network net = resnet50();
    const Layer *stem = findLayer(net, "conv1");
    ASSERT_NE(stem, nullptr);
    EXPECT_EQ(stem->outChannels, 64);
    EXPECT_EQ(stem->stride, 2);

    // Stage 4 bottlenecks end at 2048 channels.
    const Layer *last = findLayer(net, "layer4.2.conv3");
    ASSERT_NE(last, nullptr);
    EXPECT_EQ(last->outChannels, 2048);

    // Exactly four projection shortcuts.
    int downsamples = 0;
    for (const auto &l : net.layers)
        if (l.name.find("downsample") != std::string::npos)
            ++downsamples;
    EXPECT_EQ(downsamples, 4);
}

TEST(ZooStructure, ResNet152HasDeepStage3)
{
    const Network net = resnet152();
    int stage3 = 0;
    for (const auto &l : net.layers)
        if (l.name.rfind("layer3.", 0) == 0 &&
            l.name.find("conv2") != std::string::npos)
            ++stage3;
    EXPECT_EQ(stage3, 36);
}

TEST(ZooStructure, SqueezeNetFireModules)
{
    const Network net = squeezenet();
    int squeezes = 0, expands = 0;
    for (const auto &l : net.layers) {
        if (l.name.find("squeeze") != std::string::npos)
            ++squeezes;
        if (l.name.find("expand") != std::string::npos)
            ++expands;
    }
    EXPECT_EQ(squeezes, 8);
    EXPECT_EQ(expands, 16);
    // fire9 expands at 64/256.
    const Layer *f9 = findLayer(net, "fire9.squeeze");
    ASSERT_NE(f9, nullptr);
    EXPECT_EQ(f9->outChannels, 64);
}

TEST(ZooStructure, MobileNetAlternatesDepthwisePointwise)
{
    const Network net = mobilenet();
    int dw = 0, pw = 0;
    for (const auto &l : net.layers) {
        if (l.kind == LayerKind::kDepthwiseConv2d)
            ++dw;
        if (l.name.rfind("pw", 0) == 0) {
            ++pw;
            EXPECT_EQ(l.kernelH, 1) << l.name;
        }
    }
    EXPECT_EQ(dw, 13);
    EXPECT_EQ(pw, 13);
    // Final pointwise reaches 1024 channels.
    const Layer *last_pw = findLayer(net, "pw14");
    ASSERT_NE(last_pw, nullptr);
    EXPECT_EQ(last_pw->outChannels, 1024);
}

TEST(ZooStructure, BertProjectionDimensions)
{
    const Network net = bertBase();
    const Layer *q = findLayer(net, "encoder0.q_proj");
    const Layer *ffn = findLayer(net, "encoder0.ffn_in");
    ASSERT_NE(q, nullptr);
    ASSERT_NE(ffn, nullptr);
    EXPECT_EQ(q->inFeatures, 768);
    EXPECT_EQ(q->outFeatures, 768);
    EXPECT_EQ(ffn->outFeatures, 3072);
    EXPECT_EQ(q->seqLen, 32);

    const Network large = bertLarge();
    const Layer *ql = findLayer(large, "encoder0.q_proj");
    ASSERT_NE(ql, nullptr);
    EXPECT_EQ(ql->inFeatures, 1024);
}

TEST(ZooStructure, BertAttentionHeadGeometry)
{
    const Network net = bertBase();
    const Layer *scores = findLayer(net, "encoder0.attn_scores");
    ASSERT_NE(scores, nullptr);
    EXPECT_EQ(scores->numHeads, 12);
    EXPECT_EQ(scores->headDim, 64);
    EXPECT_FALSE(scores->hasWeights());
}

TEST(ZooStructure, LstmGateDimensions)
{
    const Network net = lstmLarge();
    const Layer *ih = findLayer(net, "lstm0.ih");
    const Layer *hh = findLayer(net, "lstm0.hh");
    ASSERT_NE(ih, nullptr);
    ASSERT_NE(hh, nullptr);
    EXPECT_EQ(ih->outFeatures, 4 * 1024); // i,f,g,o gates
    EXPECT_FALSE(ih->sequential);
    EXPECT_TRUE(hh->sequential);
}

TEST(ZooStructure, ActivationAccountingIncludesEveryLayer)
{
    // The per-example activation total must equal input plus the sum
    // of every layer's output elements.
    for (const auto &net : allModels()) {
        Elems manual = net.inputElemsPerExample;
        for (const auto &l : net.layers)
            manual += l.outputElemsPerExample();
        EXPECT_EQ(net.activationElemsPerExample(), manual) << net.name;
    }
}

TEST(ZooStructure, ParamAccountingIncludesEveryLayer)
{
    for (const auto &net : allModels()) {
        std::int64_t manual = 0;
        for (const auto &l : net.layers)
            manual += l.paramCount();
        EXPECT_EQ(net.paramCount(), manual) << net.name;
    }
}

TEST(ZooStructure, LayerNamesUnique)
{
    for (const auto &net : allModels()) {
        std::map<std::string, int> seen;
        for (const auto &l : net.layers)
            seen[l.name]++;
        for (const auto &[name, count] : seen)
            EXPECT_EQ(count, 1) << net.name << ": " << name;
    }
}

} // namespace
} // namespace diva
