/**
 * @file
 * Tests for the functional Conv2d layer: gradient correctness against
 * finite differences and per-example/per-batch consistency -- the
 * numeric validation of Figure 6's convolution GEMM algebra.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "dp/conv2d.h"
#include "dp/ops.h"

namespace diva
{
namespace
{

ConvGeometry
geom(int cin, int cout, int k, int stride, int pad, int hw)
{
    ConvGeometry g;
    g.inChannels = cin;
    g.outChannels = cout;
    g.kernelH = g.kernelW = k;
    g.stride = stride;
    g.padding = pad;
    g.inH = g.inW = hw;
    return g;
}

TEST(Conv2d, ForwardShape)
{
    Rng rng(1);
    const Conv2d conv(geom(3, 8, 3, 1, 1, 6), rng);
    const Tensor x = Tensor::randn(4, 3 * 36, rng, 1.0);
    const Tensor y = conv.forward(x);
    EXPECT_EQ(y.rows(), 4);
    EXPECT_EQ(y.cols(), 8 * 36);
    EXPECT_EQ(conv.paramCount(), 3 * 9 * 8 + 8);
}

TEST(Conv2d, ForwardMatchesDirectConvolution)
{
    // 1 channel, 2x2 kernel of ones, no bias: each output pixel is the
    // sum of its receptive field.
    Rng rng(2);
    Conv2d conv(geom(1, 1, 2, 1, 0, 3), rng);
    for (std::int64_t i = 0; i < conv.weight().size(); ++i)
        conv.weight()[i] = 1.0f;
    conv.bias().at(0, 0) = 0.0f;
    Tensor x(1, 9);
    for (int i = 0; i < 9; ++i)
        x.at(0, i) = float(i + 1);
    const Tensor y = conv.forward(x);
    // Output (0,0) = 1+2+4+5 = 12; (1,1) = 5+6+8+9 = 28.
    EXPECT_FLOAT_EQ(y.at(0, 0), 12.0f);
    EXPECT_FLOAT_EQ(y.at(0, 3), 28.0f);
}

TEST(Conv2d, BiasBroadcastPerChannel)
{
    Rng rng(3);
    Conv2d conv(geom(1, 2, 1, 1, 0, 2), rng);
    conv.weight().setZero();
    conv.bias().at(0, 0) = 1.5f;
    conv.bias().at(0, 1) = -2.0f;
    const Tensor x = Tensor::randn(1, 4, rng, 1.0);
    const Tensor y = conv.forward(x);
    for (int p = 0; p < 4; ++p) {
        EXPECT_FLOAT_EQ(y.at(0, p), 1.5f);
        EXPECT_FLOAT_EQ(y.at(0, 4 + p), -2.0f);
    }
}

TEST(Conv2d, PerBatchGradEqualsSumOfPerExample)
{
    Rng rng(4);
    const Conv2d conv(geom(2, 4, 3, 1, 1, 5), rng);
    const Tensor x = Tensor::randn(3, 2 * 25, rng, 1.0);
    const Tensor gy = Tensor::randn(3, 4 * 25, rng, 1.0);
    Tensor dw_b, db_b;
    conv.perBatchGrad(x, gy, dw_b, db_b);
    Tensor dw_sum(conv.weight().rows(), conv.weight().cols());
    Tensor db_sum(1, 4);
    Tensor dw_i, db_i;
    for (std::int64_t i = 0; i < 3; ++i) {
        conv.perExampleGrad(x, gy, i, dw_i, db_i);
        dw_sum.add(dw_i);
        db_sum.add(db_i);
    }
    EXPECT_LT(dw_b.maxAbsDiff(dw_sum), 1e-4);
    EXPECT_LT(db_b.maxAbsDiff(db_sum), 1e-4);
}

TEST(Conv2d, WeightGradMatchesFiniteDifferences)
{
    Rng rng(5);
    Conv2d conv(geom(2, 3, 3, 1, 1, 4), rng);
    const Tensor x = Tensor::randn(2, 2 * 16, rng, 1.0);
    const Tensor gy = Tensor::randn(2, 3 * 16, rng, 1.0);
    Tensor dw, db;
    conv.perBatchGrad(x, gy, dw, db);

    // Loss L = <y, gy>; dL/dw must match analytic dw.
    auto loss = [&]() {
        const Tensor y = conv.forward(x);
        double acc = 0.0;
        for (std::int64_t i = 0; i < y.size(); ++i)
            acc += double(y[i]) * double(gy[i]);
        return acc;
    };
    const double eps = 1e-3;
    for (std::int64_t idx :
         {std::int64_t(0), conv.weight().size() / 3,
          conv.weight().size() - 1}) {
        const float orig = conv.weight()[idx];
        conv.weight()[idx] = float(orig + eps);
        const double fp = loss();
        conv.weight()[idx] = float(orig - eps);
        const double fm = loss();
        conv.weight()[idx] = orig;
        EXPECT_NEAR(dw[idx], (fp - fm) / (2 * eps), 2e-2);
    }
    // Bias gradient too.
    const float ob = conv.bias().at(0, 1);
    conv.bias().at(0, 1) = float(ob + eps);
    const double fp = loss();
    conv.bias().at(0, 1) = float(ob - eps);
    const double fm = loss();
    conv.bias().at(0, 1) = ob;
    EXPECT_NEAR(db.at(0, 1), (fp - fm) / (2 * eps), 2e-2);
}

TEST(Conv2d, InputGradMatchesFiniteDifferences)
{
    Rng rng(6);
    const Conv2d conv(geom(2, 3, 3, 2, 1, 5), rng);
    Tensor x = Tensor::randn(1, 2 * 25, rng, 1.0);
    const Tensor gy = Tensor::randn(1, 3 * 9, rng, 1.0);
    const Tensor gx = conv.backwardInput(gy);

    auto loss = [&]() {
        const Tensor y = conv.forward(x);
        double acc = 0.0;
        for (std::int64_t i = 0; i < y.size(); ++i)
            acc += double(y[i]) * double(gy[i]);
        return acc;
    };
    const double eps = 1e-3;
    for (std::int64_t idx : {std::int64_t(0), x.size() / 2,
                             x.size() - 1}) {
        const float orig = x[idx];
        x[idx] = float(orig + eps);
        const double fp = loss();
        x[idx] = float(orig - eps);
        const double fm = loss();
        x[idx] = orig;
        EXPECT_NEAR(gx[idx], (fp - fm) / (2 * eps), 2e-2);
    }
}

TEST(Conv2d, PerExampleNormMatchesMaterialized)
{
    Rng rng(7);
    const Conv2d conv(geom(2, 4, 3, 1, 1, 4), rng);
    const Tensor x = Tensor::randn(3, 2 * 16, rng, 1.0);
    const Tensor gy = Tensor::randn(3, 4 * 16, rng, 1.0);
    Tensor dw, db;
    for (std::int64_t i = 0; i < 3; ++i) {
        conv.perExampleGrad(x, gy, i, dw, db);
        EXPECT_NEAR(conv.perExampleGradNormSq(x, gy, i),
                    dw.l2NormSq() + db.l2NormSq(), 1e-5);
    }
}

TEST(Conv2d, PerExampleGradShapeMatchesFigure6)
{
    // dW_i is the (Cin*R*S x Cout) result of a (CRS, PQ, Cout) GEMM.
    Rng rng(8);
    const Conv2d conv(geom(16, 32, 3, 1, 1, 8), rng);
    const Tensor x = Tensor::randn(2, 16 * 64, rng, 1.0);
    const Tensor gy = Tensor::randn(2, 32 * 64, rng, 1.0);
    Tensor dw, db;
    conv.perExampleGrad(x, gy, 0, dw, db);
    EXPECT_EQ(dw.rows(), 16 * 9);
    EXPECT_EQ(dw.cols(), 32);
    EXPECT_EQ(db.cols(), 32);
}

} // namespace
} // namespace diva
