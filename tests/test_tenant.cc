/**
 * @file
 * Unit tests for the multi-tenant subsystem: workload validation,
 * policy parsing, the context-switch cost model, and the scheduling
 * policies' pick behavior.
 */

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "energy/energy_model.h"
#include "mem/dram_model.h"
#include "tenant/context_switch.h"
#include "tenant/scheduler.h"
#include "tenant/serve.h"
#include "tenant/tenant.h"

namespace diva
{
namespace
{

TEST(TenantJob, ValidationCatchesBadFields)
{
    TenantJob job;
    job.name = "t";
    job.model = "ResNet-50";
    job.steps = 10;
    EXPECT_EQ(job.validationError(false), "");

    TenantJob bad = job;
    bad.model = "NoSuchNet";
    EXPECT_NE(bad.validationError(false), "");

    bad = job;
    bad.batch = -1;
    EXPECT_NE(bad.validationError(false), "");

    bad = job;
    bad.arrivalSec = -1.0;
    EXPECT_NE(bad.validationError(false), "");

    bad = job;
    bad.qosStepsPerSec = 2.0;
    bad.qosDeadlineSec = 5.0;
    EXPECT_NE(bad.validationError(false), "") << "both QoS kinds set";

    bad = job;
    bad.qosDeadlineSec = 5.0;
    bad.steps = 0;
    EXPECT_NE(bad.validationError(true), "")
        << "deadline target needs bounded steps";

    // Unbounded steps are only valid under a wall budget.
    bad = job;
    bad.steps = 0;
    EXPECT_NE(bad.validationError(false), "");
    EXPECT_EQ(bad.validationError(true), "");
}

TEST(TenantWorkload, ValidationAndDefaultMix)
{
    TenantWorkload empty;
    EXPECT_NE(empty.validationError(false), "");

    const TenantWorkload mix = defaultWorkload(5, 16, 8, 0.5);
    EXPECT_EQ(mix.jobs.size(), 5u);
    EXPECT_EQ(mix.validationError(false), "");
    for (std::size_t i = 0; i < mix.jobs.size(); ++i) {
        EXPECT_EQ(mix.jobs[i].steps, 16u);
        EXPECT_EQ(mix.jobs[i].batch, 8);
        EXPECT_DOUBLE_EQ(mix.jobs[i].arrivalSec, 0.5 * double(i));
    }
    // Rotation must produce distinct models for small mixes.
    EXPECT_NE(mix.jobs[0].model, mix.jobs[1].model);
}

TEST(SchedPolicy, NamesRoundTrip)
{
    for (SchedPolicy p : allPolicies()) {
        const auto parsed = policyFromName(policyName(p));
        ASSERT_TRUE(parsed.has_value()) << policyName(p);
        EXPECT_EQ(*parsed, p);
    }
    EXPECT_EQ(policyFromName("round-robin"), SchedPolicy::kRoundRobin);
    EXPECT_EQ(policyFromName("priority"), SchedPolicy::kPriority);
    EXPECT_EQ(policyFromName("EDF"), SchedPolicy::kEdf);
    EXPECT_FALSE(policyFromName("bogus").has_value());
    EXPECT_FALSE(policyFromName("").has_value());
}

TEST(ContextSwitchModel, ChargesFlushAndRefillThroughDram)
{
    const AcceleratorConfig cfg = divaDefault(true);
    const ContextSwitchModel model(cfg);
    const SwitchCost cost = model.cost();

    // Two dependent streaming transfers of the whole SRAM.
    const DramModel dram(cfg);
    EXPECT_EQ(cost.cycles, 2 * dram.transferCycles(cfg.sramBytes));
    EXPECT_EQ(cost.dramBytes, 2 * cfg.sramBytes);
    EXPECT_DOUBLE_EQ(cost.seconds, cfg.cyclesToSeconds(cost.cycles));

    // Energy covers the data movement plus the engine idle power.
    const double movement =
        double(cost.dramBytes) * (EnergyModel::kSramJoulesPerByte +
                                  EnergyModel::kDramJoulesPerByte);
    EXPECT_GT(cost.energyJ, movement);
    EXPECT_DOUBLE_EQ(cost.energyJ,
                     movement +
                         EnergyModel::enginePowerW(cfg) * cost.seconds);
}

TEST(ContextSwitchModel, ScalesWithSramAndChips)
{
    AcceleratorConfig small = divaDefault(true);
    AcceleratorConfig big = small;
    big.sramBytes = 2 * small.sramBytes;
    EXPECT_GT(ContextSwitchModel(big).cost().cycles,
              ContextSwitchModel(small).cost().cycles);
    EXPECT_GT(ContextSwitchModel(big).cost().energyJ,
              ContextSwitchModel(small).cost().energyJ);

    // A pod flushes every chip's SRAM in parallel: same stall, chips
    // times the energy and traffic.
    const SwitchCost one = ContextSwitchModel(small, 1).cost();
    const SwitchCost pod = ContextSwitchModel(small, 4).cost();
    EXPECT_EQ(pod.cycles, one.cycles);
    EXPECT_EQ(pod.dramBytes, 4 * one.dramBytes);
    EXPECT_NEAR(pod.energyJ, 4.0 * one.energyJ, 1e-12);
}

/** One-view helper for scheduler pick tests. */
SchedView
view(double arrival, int prio, double deadline)
{
    SchedView v;
    v.arrivalSec = arrival;
    v.priority = prio;
    v.nextDeadlineSec = deadline;
    return v;
}

TEST(Scheduler, FifoPicksEarliestArrival)
{
    const auto sched = makeScheduler(SchedPolicy::kFifo);
    const double inf = std::numeric_limits<double>::infinity();
    const std::vector<SchedView> tenants = {
        view(2.0, 0, inf), view(1.0, 5, inf), view(3.0, 9, inf)};
    EXPECT_EQ(sched->pick(tenants, {0, 1, 2}, 5.0), 1u);
    // Ties break toward the lower index.
    const std::vector<SchedView> tie = {view(1.0, 0, inf),
                                        view(1.0, 0, inf)};
    EXPECT_EQ(sched->pick(tie, {0, 1}, 5.0), 0u);
}

TEST(Scheduler, RoundRobinRotates)
{
    const auto sched = makeScheduler(SchedPolicy::kRoundRobin);
    const double inf = std::numeric_limits<double>::infinity();
    const std::vector<SchedView> tenants = {
        view(0.0, 0, inf), view(0.0, 0, inf), view(0.0, 0, inf)};
    const std::vector<std::size_t> ready = {0, 1, 2};
    EXPECT_EQ(sched->pick(tenants, ready, 0.0), 0u);
    EXPECT_EQ(sched->pick(tenants, ready, 0.0), 1u);
    EXPECT_EQ(sched->pick(tenants, ready, 0.0), 2u);
    EXPECT_EQ(sched->pick(tenants, ready, 0.0), 0u) << "wrap-around";
    // A departed tenant is skipped without disturbing the rotation.
    EXPECT_EQ(sched->pick(tenants, {0, 2}, 0.0), 2u);
}

TEST(Scheduler, PriorityPrefersLargerPriority)
{
    const auto sched = makeScheduler(SchedPolicy::kPriority);
    const double inf = std::numeric_limits<double>::infinity();
    const std::vector<SchedView> tenants = {
        view(0.0, 1, inf), view(5.0, 7, inf), view(0.0, 7, inf)};
    // Highest priority wins; the priority tie breaks on arrival.
    EXPECT_EQ(sched->pick(tenants, {0, 1, 2}, 9.0), 2u);
}

TEST(Scheduler, EdfPrefersEarliestDeadline)
{
    const auto sched = makeScheduler(SchedPolicy::kEdf);
    const double inf = std::numeric_limits<double>::infinity();
    const std::vector<SchedView> tenants = {
        view(0.0, 0, 9.0), view(1.0, 0, 4.0), view(0.0, 0, inf)};
    EXPECT_EQ(sched->pick(tenants, {0, 1, 2}, 2.0), 1u);
    // Tenants without QoS (infinite deadline) yield to targeted ones.
    EXPECT_EQ(sched->pick(tenants, {0, 2}, 2.0), 0u);
}

TEST(SafeRatio, GuardsZeroAndNonFinite)
{
    EXPECT_DOUBLE_EQ(safeRatio(6.0, 3.0), 2.0);
    EXPECT_TRUE(std::isnan(safeRatio(1.0, 0.0)));
    EXPECT_TRUE(std::isnan(
        safeRatio(1.0, std::numeric_limits<double>::infinity())));
    EXPECT_TRUE(std::isnan(
        safeRatio(1.0, std::numeric_limits<double>::quiet_NaN())));
}

} // namespace
} // namespace diva
