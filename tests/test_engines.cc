/**
 * @file
 * Unit tests for the three GEMM-engine cycle models, checking the
 * dataflow-specific behaviors the paper builds its case on.
 */

#include <gtest/gtest.h>

#include "arch/accelerator_config.h"
#include "gemm/engine.h"
#include "gemm/os_systolic.h"
#include "gemm/outer_product.h"
#include "gemm/ws_systolic.h"

namespace diva
{
namespace
{

GemmResult
simulate(const AcceleratorConfig &cfg, const GemmShape &shape,
         std::uint64_t count = 1, GemmOptions opt = {})
{
    return GemmEngineModel::create(cfg)->simulateBatched(shape, count,
                                                         opt);
}

TEST(EngineFactory, CreatesMatchingEngine)
{
    EXPECT_NE(dynamic_cast<WsSystolicModel *>(
                  GemmEngineModel::create(tpuV3Ws()).get()),
              nullptr);
    EXPECT_NE(dynamic_cast<OsSystolicModel *>(
                  GemmEngineModel::create(systolicOs(false)).get()),
              nullptr);
    EXPECT_NE(dynamic_cast<OuterProductModel *>(
                  GemmEngineModel::create(divaDefault()).get()),
              nullptr);
}

TEST(Engines, UsefulMacsIndependentOfEngine)
{
    const GemmShape s(300, 70, 500);
    const Macs expected = s.macs();
    EXPECT_EQ(simulate(tpuV3Ws(), s).usefulMacs, expected);
    EXPECT_EQ(simulate(systolicOs(false), s).usefulMacs, expected);
    EXPECT_EQ(simulate(divaDefault(), s).usefulMacs, expected);
}

TEST(Engines, UtilizationNeverExceedsOne)
{
    const GemmShape shapes[] = {
        {128, 128, 128}, {4096, 4096, 4096}, {1024, 1, 1024},
        {1, 1024, 1},    {17, 3, 999},
    };
    for (const auto &cfg :
         {tpuV3Ws(), systolicOs(false), divaDefault()}) {
        for (const auto &s : shapes) {
            const GemmResult r = simulate(cfg, s);
            EXPECT_LE(r.utilization(cfg), 1.0)
                << cfg.name << " " << s.str();
            EXPECT_GT(r.cycles, 0u);
        }
    }
}

TEST(Engines, BatchedCountZeroIsEmpty)
{
    const GemmResult r = simulate(divaDefault(), GemmShape(8, 8, 8), 0);
    EXPECT_EQ(r.cycles, 0u);
    EXPECT_EQ(r.usefulMacs, 0u);
}

TEST(Engines, BatchedScalesCompute)
{
    const GemmShape s(256, 64, 256);
    const GemmResult one = simulate(divaDefault(), s, 1);
    const GemmResult ten = simulate(divaDefault(), s, 10);
    EXPECT_EQ(ten.computeCycles, 10 * one.computeCycles);
    EXPECT_EQ(ten.usefulMacs, 10 * one.usefulMacs);
    EXPECT_EQ(ten.dram.total(), 10 * one.dram.total());
}

TEST(Engines, InvalidShapeRejected)
{
    EXPECT_THROW(simulate(divaDefault(), GemmShape(0, 1, 1)),
                 std::logic_error);
}

TEST(WsSystolic, SmallKLeavesArrayIdle)
{
    // The paper's WS pathology: K=1 latches one of 128 PE rows, so
    // utilization cannot exceed 1/128 even before other overheads.
    const AcceleratorConfig cfg = tpuV3Ws();
    GemmOptions opt;
    opt.writeOutputToDram = false; // isolate compute behaviour
    const GemmResult r =
        simulate(cfg, GemmShape(4096, 1, 128), 1, opt);
    EXPECT_LE(r.utilization(cfg), 1.0 / 128.0 + 1e-9);
}

TEST(WsSystolic, LargeSquareGemmIsEfficient)
{
    const AcceleratorConfig cfg = tpuV3Ws();
    const GemmResult r = simulate(cfg, GemmShape(4096, 4096, 4096));
    EXPECT_GT(r.utilization(cfg), 0.5);
}

TEST(WsSystolic, ComputeCyclesCoverWeightFill)
{
    // A (1,K,1) GEMM is dominated by latching K/8 weight rows.
    const AcceleratorConfig cfg = tpuV3Ws();
    GemmOptions opt;
    opt.writeOutputToDram = false;
    const GemmResult r128 =
        simulate(cfg, GemmShape(1, 128, 1), 1, opt);
    // 16 fill cycles + 1 + 128 + 1 - 1 stream cycles.
    EXPECT_EQ(r128.computeCycles, 16u + 129u);
}

TEST(WsSystolic, DoubleBufferedWeightsNeverSlower)
{
    AcceleratorConfig dbuf = tpuV3Ws();
    dbuf.wsDoubleBufferWeights = true;
    const GemmShape shapes[] = {
        {128, 128, 128}, {1024, 1024, 1024}, {512, 1, 512},
        {64, 4096, 64},
    };
    GemmOptions opt;
    opt.writeOutputToDram = false;
    for (const auto &s : shapes) {
        const Cycles plain =
            simulate(tpuV3Ws(), s, 1, opt).computeCycles;
        const Cycles overlapped =
            simulate(dbuf, s, 1, opt).computeCycles;
        EXPECT_LE(overlapped, plain) << s.str();
    }
    // Multi-K-tile GEMMs must see a strict improvement.
    const Cycles plain =
        simulate(tpuV3Ws(), GemmShape(64, 4096, 64), 1, opt)
            .computeCycles;
    const Cycles overlapped =
        simulate(dbuf, GemmShape(64, 4096, 64), 1, opt).computeCycles;
    EXPECT_LT(overlapped, plain);
}

TEST(OsSystolic, SkewDominatesSmallK)
{
    // OS does not fix small-K GEMMs: a K=1 tile still pays the
    // PE_H + PE_W skew (Section IV-B).
    const AcceleratorConfig cfg = systolicOs(false);
    GemmOptions opt;
    opt.writeOutputToDram = false;
    const GemmResult r = simulate(cfg, GemmShape(128, 1, 128), 1, opt);
    EXPECT_GE(r.computeCycles, 250u);
}

TEST(OuterProduct, KCyclesPerFullTile)
{
    // One full 128x128 output tile takes K cycles of accumulation
    // (plus constant fill), independent of K's size.
    const AcceleratorConfig cfg = divaDefault();
    GemmOptions opt;
    opt.writeOutputToDram = false;
    const GemmResult r64 =
        simulate(cfg, GemmShape(128, 64, 128), 1, opt);
    const GemmResult r512 =
        simulate(cfg, GemmShape(128, 512, 128), 1, opt);
    EXPECT_EQ(r512.computeCycles - r64.computeCycles, 512u - 64u);
}

TEST(OuterProduct, ThroughputIndependentOfKShape)
{
    // Same MAC count split as (M,K,N)=(128,256,128) vs (128,1,128)x256:
    // the outer-product engine keeps high throughput for both, while
    // WS collapses on the K=1 version.
    const AcceleratorConfig diva_cfg = divaDefault();
    const AcceleratorConfig ws_cfg = tpuV3Ws();
    GemmOptions opt;
    opt.writeOutputToDram = false;

    const GemmResult diva_batched =
        simulate(diva_cfg, GemmShape(128, 1, 128), 256, opt);
    const GemmResult ws_batched =
        simulate(ws_cfg, GemmShape(128, 1, 128), 256, opt);
    EXPECT_GT(diva_batched.utilization(diva_cfg),
              5.0 * ws_batched.utilization(ws_cfg));
}

TEST(OuterProduct, DrainOverlapBoundsTileCost)
{
    // With K=1 the tile cost is the drain time (128/R = 16), not
    // K + drain.
    AcceleratorConfig cfg = divaDefault();
    GemmOptions opt;
    opt.writeOutputToDram = false;
    const GemmResult r = simulate(cfg, GemmShape(128, 1, 128), 1, opt);
    EXPECT_LE(r.computeCycles, 16u + 2u);
}

TEST(Engines, MemoryBoundGemmLimitedByBandwidth)
{
    // A huge K=1 GEMM writing its output is DRAM-bound on every
    // engine: cycles ~ bytes / bytes-per-cycle.
    const GemmShape s(8192, 1, 8192);
    for (const auto &cfg :
         {tpuV3Ws(), systolicOs(false), divaDefault()}) {
        const GemmResult r = simulate(cfg, s);
        EXPECT_GE(r.cycles, r.memoryCycles);
        EXPECT_GT(r.memoryCycles, 0u);
    }
}

TEST(Engines, SuppressedOutputReducesTrafficAndTime)
{
    const GemmShape s(1024, 4, 1024);
    GemmOptions keep;
    GemmOptions drop;
    drop.writeOutputToDram = false;
    const GemmResult with_write = simulate(divaDefault(), s, 64, keep);
    const GemmResult no_write = simulate(divaDefault(), s, 64, drop);
    EXPECT_LT(no_write.dram.total(), with_write.dram.total());
    EXPECT_LE(no_write.cycles, with_write.cycles);
    EXPECT_EQ(no_write.dram.writeBytes, 0u);
}

TEST(Engines, SramTrafficScalesWithComputeCycles)
{
    const GemmShape s(512, 512, 512);
    for (const auto &cfg :
         {tpuV3Ws(), systolicOs(false), divaDefault()}) {
        const GemmResult r = simulate(cfg, s);
        EXPECT_GT(r.sramReadBytes, 0u);
        EXPECT_GT(r.sramWriteBytes, 0u);
    }
}

TEST(GemmResult, Accumulation)
{
    GemmResult a;
    a.cycles = 10;
    a.usefulMacs = 100;
    a.dram.readBytes = 5;
    GemmResult b = a;
    a += b;
    EXPECT_EQ(a.cycles, 20u);
    EXPECT_EQ(a.usefulMacs, 200u);
    EXPECT_EQ(a.dram.readBytes, 10u);
}

} // namespace
} // namespace diva
