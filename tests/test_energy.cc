/**
 * @file
 * Tests for the energy/area/power model (Table III, Figure 16).
 */

#include <gtest/gtest.h>

#include "arch/accelerator_config.h"
#include "energy/energy_model.h"
#include "models/zoo.h"
#include "sim/executor.h"
#include "train/memory_model.h"
#include "train/planner.h"

namespace diva
{
namespace
{

TEST(EnergyModel, TableIIIPowerNumbers)
{
    EXPECT_DOUBLE_EQ(EnergyModel::enginePowerW(tpuV3Ws()), 13.4);
    EXPECT_DOUBLE_EQ(EnergyModel::enginePowerW(systolicOs(false)), 13.6);
    EXPECT_DOUBLE_EQ(EnergyModel::enginePowerW(divaDefault(false)),
                     21.2);
    // Section VI-B: outer-product adds 7.8 W over WS, PPU adds 2.6 W.
    EXPECT_DOUBLE_EQ(EnergyModel::enginePowerW(divaDefault(true)),
                     21.2 + 2.6);
}

TEST(EnergyModel, TableIIIAreaNumbers)
{
    EXPECT_DOUBLE_EQ(EnergyModel::engineAreaMm2(tpuV3Ws()), 68.0);
    EXPECT_DOUBLE_EQ(EnergyModel::engineAreaMm2(systolicOs(false)),
                     70.0);
    EXPECT_DOUBLE_EQ(EnergyModel::engineAreaMm2(divaDefault(false)),
                     82.0);
    EXPECT_DOUBLE_EQ(EnergyModel::engineAreaMm2(divaDefault(true)),
                     85.0);
}

TEST(EnergyModel, DivaOverheadsWithinChipBudget)
{
    // Section VI-B: +17 mm^2 over WS (~0.3% of 650 mm^2 chip) and
    // +10.4 W (~2.3% of the 450 W TDP).
    const double extra_area =
        EnergyModel::engineAreaMm2(divaDefault(true)) -
        EnergyModel::engineAreaMm2(tpuV3Ws());
    const double extra_power =
        EnergyModel::enginePowerW(divaDefault(true)) -
        EnergyModel::enginePowerW(tpuV3Ws());
    EXPECT_NEAR(extra_area, 17.0, 0.1);
    EXPECT_NEAR(extra_power, 10.4, 0.1);
    EXPECT_LT(extra_area / EnergyModel::kChipAreaMm2, 0.03);
    EXPECT_LT(extra_power / EnergyModel::kChipTdpW, 0.025);
}

TEST(EnergyModel, PowerScalesWithPeCount)
{
    AcceleratorConfig half = divaDefault(false);
    half.peRows = 64;
    EXPECT_DOUBLE_EQ(EnergyModel::enginePowerW(half), 21.2 / 2.0);
}

TEST(EnergyModel, EnergyComponentsPositive)
{
    const AcceleratorConfig cfg = divaDefault(true);
    const SimResult r = Executor(cfg).run(
        buildOpStream(resnet50(), TrainingAlgorithm::kDpSgdR, 32));
    const EnergyBreakdown e = EnergyModel::energy(r, cfg);
    EXPECT_GT(e.computeJ, 0.0);
    EXPECT_GT(e.sramJ, 0.0);
    EXPECT_GT(e.dramJ, 0.0);
    EXPECT_DOUBLE_EQ(e.total(), e.computeJ + e.sramJ + e.dramJ);
}

TEST(EnergyModel, DivaMoreEnergyEfficientThanWsForDp)
{
    // Figure 16: DiVa's higher power is outweighed by its much shorter
    // training time.
    for (const auto &net : breakdownModels()) {
        const int batch =
            maxBatchSize(net, TrainingAlgorithm::kDpSgd, 16_GiB);
        const OpStream stream =
            buildOpStream(net, TrainingAlgorithm::kDpSgdR, batch);
        const AcceleratorConfig ws_cfg = tpuV3Ws();
        const AcceleratorConfig dv_cfg = divaDefault(true);
        const double e_ws =
            EnergyModel::energy(Executor(ws_cfg).run(stream), ws_cfg)
                .total();
        const double e_dv =
            EnergyModel::energy(Executor(dv_cfg).run(stream), dv_cfg)
                .total();
        EXPECT_LT(e_dv, e_ws) << net.name;
    }
}

TEST(EnergyModel, EffectiveTflopsPerWattImproves)
{
    // Table III: DiVa achieves ~3.5x the TFLOPS/W of WS on DP work.
    const Network net = resnet152();
    const OpStream stream =
        buildOpStream(net, TrainingAlgorithm::kDpSgdR, 32);
    const AcceleratorConfig ws_cfg = tpuV3Ws();
    const AcceleratorConfig dv_cfg = divaDefault(true);
    const SimResult ws = Executor(ws_cfg).run(stream);
    const SimResult dv = Executor(dv_cfg).run(stream);
    const double ws_eff = ws.overallUtilization(ws_cfg) *
                          ws_cfg.peakTflops() /
                          EnergyModel::enginePowerW(ws_cfg);
    const double dv_eff = dv.overallUtilization(dv_cfg) *
                          dv_cfg.peakTflops() /
                          EnergyModel::enginePowerW(dv_cfg);
    EXPECT_GT(dv_eff, 2.0 * ws_eff);
}

TEST(EnergyModel, TableEntryIsConsistent)
{
    const AcceleratorConfig cfg = divaDefault(true);
    const AreaPowerEntry entry = EnergyModel::tableEntry(cfg);
    EXPECT_STREQ(entry.engine, "DiVa");
    EXPECT_DOUBLE_EQ(entry.powerWatts,
                     EnergyModel::enginePowerW(cfg));
    EXPECT_DOUBLE_EQ(entry.areaMm2, EnergyModel::engineAreaMm2(cfg));
    EXPECT_NEAR(entry.peakTflops, 30.8, 0.1);
}

TEST(EnergyModel, DramEnergyDominatedBySpills)
{
    // Without the PPU, DP-SGD(R)'s DRAM energy balloons with the
    // per-example gradient spills.
    const Network net = resnet50();
    const OpStream stream =
        buildOpStream(net, TrainingAlgorithm::kDpSgdR, 64);
    const AcceleratorConfig with = divaDefault(true);
    const AcceleratorConfig without = divaDefault(false);
    const double dram_with =
        EnergyModel::energy(Executor(with).run(stream), with).dramJ;
    const double dram_without =
        EnergyModel::energy(Executor(without).run(stream), without)
            .dramJ;
    EXPECT_GT(dram_without, 5.0 * dram_with);
}

} // namespace
} // namespace diva
