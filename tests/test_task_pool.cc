/**
 * @file
 * Unit tests for the shared persistent work-stealing TaskPool: exact
 * [0, count) coverage under every chunking, inline execution of
 * trivial and nested runs, reuse across rounds, and determinism of
 * disjoint-state workloads across pool sizes.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <vector>

#include "common/task_pool.h"

namespace diva
{
namespace
{

/**
 * Every index in [0, count) must run exactly once, whatever the lane
 * count -- including counts that do not divide evenly, counts smaller
 * than the worker count, and the empty run.  This is the chunking
 * contract: chunk l covers [l*count/lanes, (l+1)*count/lanes) and the
 * chunks tile [0, count) with no overlap and no gap.
 */
TEST(TaskPool, EveryIndexRunsExactlyOnce)
{
    TaskPool pool;
    for (std::size_t count : {0u, 1u, 2u, 3u, 7u, 8u, 64u, 1000u}) {
        for (int workers : {1, 2, 3, 5, 8}) {
            std::vector<std::atomic<int>> seen(count);
            for (auto &s : seen)
                s.store(0);
            pool.parallelFor(count, workers, [&](std::size_t i) {
                ASSERT_LT(i, count);
                seen[i].fetch_add(1);
            });
            for (std::size_t i = 0; i < count; ++i)
                ASSERT_EQ(seen[i].load(), 1)
                    << "index " << i << " of " << count << " with "
                    << workers << " workers";
        }
    }
}

/** Trivial runs (1 worker or 1 index) stay on the calling thread and
 *  never spawn pool threads. */
TEST(TaskPool, TrivialRunsExecuteInlineWithoutWorkers)
{
    TaskPool pool;
    int hits = 0;
    pool.parallelFor(16, 1, [&](std::size_t) { ++hits; });
    EXPECT_EQ(hits, 16);
    pool.parallelFor(1, 8, [&](std::size_t i) {
        EXPECT_EQ(i, 0u);
        ++hits;
    });
    EXPECT_EQ(hits, 17);
    pool.parallelFor(0, 8, [&](std::size_t) { ++hits; });
    EXPECT_EQ(hits, 17);
    // None of the above may have touched the pool machinery.
    EXPECT_EQ(pool.workerCount(), 0u);
}

/** Nested parallelFor from inside a lane runs inline (no deadlock on
 *  the pool's own workers) and still covers every inner index. */
TEST(TaskPool, NestedCallsRunInlineAndCoverEverything)
{
    TaskPool pool;
    constexpr std::size_t kOuter = 4;
    constexpr std::size_t kInner = 100;
    std::vector<std::atomic<int>> cells(kOuter * kInner);
    for (auto &c : cells)
        c.store(0);
    pool.parallelFor(kOuter, 4, [&](std::size_t o) {
        pool.parallelFor(kInner, 4, [&](std::size_t i) {
            cells[o * kInner + i].fetch_add(1);
        });
    });
    for (std::size_t i = 0; i < cells.size(); ++i)
        ASSERT_EQ(cells[i].load(), 1) << "cell " << i;
}

/** The pool persists across rounds: workers spawn once for the
 *  largest request and later rounds reuse them. */
TEST(TaskPool, ReusedAcrossRoundsWithoutRespawning)
{
    TaskPool pool;
    std::atomic<std::size_t> total{0};
    pool.parallelFor(32, 4, [&](std::size_t) { total.fetch_add(1); });
    const std::size_t spawned = pool.workerCount();
    EXPECT_GE(spawned, 1u);
    EXPECT_LE(spawned, 3u); // the caller is lane 0
    for (int round = 0; round < 50; ++round)
        pool.parallelFor(32, 4,
                         [&](std::size_t) { total.fetch_add(1); });
    EXPECT_EQ(total.load(), 32u * 51u);
    EXPECT_EQ(pool.workerCount(), spawned); // no growth, no respawn
}

/**
 * Disjoint-state workloads -- each index writes only its own slot --
 * produce identical results at every pool size.  This is the property
 * the fleet's byte-identity across --threads rests on.
 */
TEST(TaskPool, DisjointWorkloadResultsIndependentOfPoolSize)
{
    TaskPool pool;
    constexpr std::size_t kN = 257; // prime: uneven chunks everywhere
    auto run = [&](int workers) {
        std::vector<double> out(kN, 0.0);
        pool.parallelFor(kN, workers, [&](std::size_t i) {
            double v = double(i) + 1.0;
            for (int k = 0; k < 8; ++k)
                v = v * 1.0000001 + double(k);
            out[i] = v;
        });
        return out;
    };
    const std::vector<double> one = run(1);
    for (int workers : {2, 4, 8})
        EXPECT_EQ(run(workers), one) << workers << " workers";
}

/** The process-wide shared pool is a single instance. */
TEST(TaskPool, SharedPoolIsSingleton)
{
    EXPECT_EQ(&TaskPool::shared(), &TaskPool::shared());
}

} // namespace
} // namespace diva
