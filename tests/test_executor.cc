/**
 * @file
 * Tests for the executor: stage accounting, PPU dispatch policy,
 * spill policy per algorithm, and the paper's comparative claims at
 * the whole-iteration level.
 */

#include <gtest/gtest.h>

#include "arch/accelerator_config.h"
#include "models/zoo.h"
#include "sim/executor.h"
#include "train/memory_model.h"
#include "train/planner.h"

namespace diva
{
namespace
{

SimResult
simulate(const AcceleratorConfig &cfg, const Network &net,
         TrainingAlgorithm algo, int batch)
{
    return Executor(cfg).run(buildOpStream(net, algo, batch));
}

TEST(Executor, StageCyclesCoverAllWork)
{
    const SimResult r =
        simulate(tpuV3Ws(), resnet50(), TrainingAlgorithm::kDpSgdR, 32);
    EXPECT_GT(r.totalCycles(), 0u);
    EXPECT_GT(r.stageCyclesFor(Stage::kForward), 0u);
    EXPECT_GT(r.stageCyclesFor(Stage::kPerExampleGrad), 0u);
    EXPECT_GT(r.stageCyclesFor(Stage::kGradNorm), 0u);
    EXPECT_GT(r.stageCyclesFor(Stage::kReduceNoise), 0u);
}

TEST(Executor, SgdHasNoDpStages)
{
    const SimResult r =
        simulate(tpuV3Ws(), resnet50(), TrainingAlgorithm::kSgd, 32);
    EXPECT_EQ(r.stageCyclesFor(Stage::kPerExampleGrad), 0u);
    EXPECT_EQ(r.stageCyclesFor(Stage::kGradNorm), 0u);
    EXPECT_EQ(r.stageCyclesFor(Stage::kGradClip), 0u);
    EXPECT_EQ(r.stageCyclesFor(Stage::kReduceNoise), 0u);
    EXPECT_EQ(r.postProcessingDram.total(), 0u);
}

TEST(Executor, PpuEliminatesNormTraffic)
{
    const Network net = resnet50();
    const SimResult no_ppu =
        simulate(divaDefault(false), net, TrainingAlgorithm::kDpSgdR,
                 32);
    const SimResult with_ppu =
        simulate(divaDefault(true), net, TrainingAlgorithm::kDpSgdR, 32);
    // Without the PPU the gradients spill and are re-read; with it the
    // norm stage produces no off-chip traffic at all.
    EXPECT_GT(no_ppu.postProcessingDram.total(), 0u);
    const double reduction =
        1.0 - double(with_ppu.postProcessingDram.total()) /
                  double(no_ppu.postProcessingDram.total());
    EXPECT_GT(reduction, 0.95); // the paper's "99%" claim
}

TEST(Executor, PpuShrinksNormStageLatency)
{
    const Network net = resnet152();
    const SimResult no_ppu =
        simulate(divaDefault(false), net, TrainingAlgorithm::kDpSgdR,
                 32);
    const SimResult with_ppu =
        simulate(divaDefault(true), net, TrainingAlgorithm::kDpSgdR, 32);
    EXPECT_LT(with_ppu.stageCyclesFor(Stage::kGradNorm) * 100,
              no_ppu.stageCyclesFor(Stage::kGradNorm));
}

TEST(Executor, VanillaDpSgdAlwaysSpills)
{
    // Even with a PPU, vanilla DP-SGD must materialize per-example
    // grads for the later clip stage.
    const SimResult r =
        simulate(divaDefault(true), resnet50(), TrainingAlgorithm::kDpSgd,
                 32);
    EXPECT_GT(r.postProcessingDram.writeBytes, 0u);
    EXPECT_GT(r.stageCyclesFor(Stage::kGradClip), 0u);
}

TEST(Executor, DpSgdRWithPpuSpillsNothing)
{
    const SimResult r = simulate(divaDefault(true), resnet50(),
                                 TrainingAlgorithm::kDpSgdR, 32);
    // Only the final noise read-modify-write of |W| remains.
    const Bytes param_bytes = Bytes(resnet50().paramCount()) * 4;
    EXPECT_LE(r.postProcessingDram.total(), 3 * param_bytes);
}

TEST(Executor, DpSlowerThanSgdOnWs)
{
    // Figure 5: DP training is many times slower than SGD on the WS
    // baseline.
    const Network net = resnet50();
    const Cycles sgd =
        simulate(tpuV3Ws(), net, TrainingAlgorithm::kSgd, 32)
            .totalCycles();
    const Cycles dp =
        simulate(tpuV3Ws(), net, TrainingAlgorithm::kDpSgd, 32)
            .totalCycles();
    const Cycles dpr =
        simulate(tpuV3Ws(), net, TrainingAlgorithm::kDpSgdR, 32)
            .totalCycles();
    EXPECT_GT(dp, 3 * sgd);
    EXPECT_GT(dpr, 2 * sgd);
}

TEST(Executor, DpSgdRFasterThanDpSgdOnWs)
{
    // Figure 5's surprising result: despite the second backprop,
    // DP-SGD(R) outperforms vanilla DP-SGD (avg 31% in the paper).
    for (const auto &net : {resnet50(), vgg16(), bertBase()}) {
        const int batch =
            maxBatchSize(net, TrainingAlgorithm::kDpSgd, 16_GiB);
        const Cycles dp =
            simulate(tpuV3Ws(), net, TrainingAlgorithm::kDpSgd, batch)
                .totalCycles();
        const Cycles dpr =
            simulate(tpuV3Ws(), net, TrainingAlgorithm::kDpSgdR, batch)
                .totalCycles();
        EXPECT_LT(dpr, dp) << net.name;
    }
}

TEST(Executor, DivaBeatsWsOnDpTraining)
{
    // Figure 13's headline: DiVa (with PPU) >> WS for DP-SGD(R).
    for (const auto &net : breakdownModels()) {
        const int batch =
            maxBatchSize(net, TrainingAlgorithm::kDpSgd, 16_GiB);
        const SimResult ws =
            simulate(tpuV3Ws(), net, TrainingAlgorithm::kDpSgdR, batch);
        const SimResult diva = simulate(divaDefault(true), net,
                                        TrainingAlgorithm::kDpSgdR,
                                        batch);
        EXPECT_GT(speedup(ws, diva), 1.5) << net.name;
    }
}

TEST(Executor, DivaPpuOutperformsNoPpu)
{
    for (const auto &net : breakdownModels()) {
        const SimResult no_ppu = simulate(
            divaDefault(false), net, TrainingAlgorithm::kDpSgdR, 32);
        const SimResult with_ppu = simulate(
            divaDefault(true), net, TrainingAlgorithm::kDpSgdR, 32);
        EXPECT_GT(speedup(no_ppu, with_ppu), 1.0) << net.name;
    }
}

TEST(Executor, UtilizationImprovesOnDiva)
{
    const Network net = resnet152();
    const SimResult ws =
        simulate(tpuV3Ws(), net, TrainingAlgorithm::kDpSgdR, 32);
    const SimResult diva =
        simulate(divaDefault(true), net, TrainingAlgorithm::kDpSgdR, 32);
    EXPECT_GT(diva.overallUtilization(divaDefault(true)),
              2.0 * ws.overallUtilization(tpuV3Ws()));
}

TEST(Executor, PerExampleStageUtilizationGap)
{
    // Figure 15: the per-example weight-gradient stage shows the
    // largest utilization improvement.
    const Network net = vgg16();
    const AcceleratorConfig ws_cfg = tpuV3Ws();
    const AcceleratorConfig dv_cfg = divaDefault(true);
    const SimResult ws =
        simulate(ws_cfg, net, TrainingAlgorithm::kDpSgdR, 32);
    const SimResult dv =
        simulate(dv_cfg, net, TrainingAlgorithm::kDpSgdR, 32);
    EXPECT_GT(dv.stageUtilization(Stage::kPerExampleGrad, dv_cfg),
              2.0 * ws.stageUtilization(Stage::kPerExampleGrad, ws_cfg));
}

TEST(Executor, ForwardStageIdenticalAcrossDpAlgorithms)
{
    const Network net = mobilenet();
    const SimResult dp =
        simulate(tpuV3Ws(), net, TrainingAlgorithm::kDpSgd, 16);
    const SimResult dpr =
        simulate(tpuV3Ws(), net, TrainingAlgorithm::kDpSgdR, 16);
    EXPECT_EQ(dp.stageCyclesFor(Stage::kForward),
              dpr.stageCyclesFor(Stage::kForward));
}

TEST(SimResult, SpeedupAndAccumulation)
{
    SimResult a;
    a.stageCycles[0] = 100;
    SimResult b;
    b.stageCycles[0] = 50;
    EXPECT_DOUBLE_EQ(speedup(a, b), 2.0);
    a += b;
    EXPECT_EQ(a.totalCycles(), 150u);
}

TEST(SimResult, SecondsAtClock)
{
    SimResult r;
    r.stageCycles[0] = 940'000'000;
    EXPECT_NEAR(r.seconds(tpuV3Ws()), 1.0, 1e-9);
}

} // namespace
} // namespace diva
