/**
 * @file
 * Tests of the windowed telemetry layer (src/obs/): quantile-sketch
 * exactness on all-equal samples, sub-bucket-width spreads, the
 * documented 1/16 relative error bound cross-checked against the
 * exact nearest-rank percentiles in src/common/percentile.cc,
 * merge order-independence, window-edge determinism, the bitwise
 * latency-decomposition invariant (fast and slow paths), the SLO spec
 * parser, and end-to-end byte-determinism of the fleet and serve-loop
 * telemetry across engine thread counts and warm plan caches --
 * including that turning telemetry on perturbs no existing output.
 */

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "arrivals/generate.h"
#include "common/percentile.h"
#include "fleet/emit.h"
#include "fleet/engine.h"
#include "fleet/fleet.h"
#include "obs/slo.h"
#include "tenant/emit.h"
#include "tenant/serve.h"

namespace diva
{
namespace
{

using obs::ComponentWindows;
using obs::LatencyComponents;
using obs::QuantileSketch;

/** Deterministic xorshift64* stream (tests must not use rand()). */
struct Rng
{
    std::uint64_t state;

    std::uint64_t
    next()
    {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        return state * 0x2545F4914F6CDD1DULL;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return double(next() >> 11) * 0x1p-53;
    }
};

TEST(QuantileSketchTest, AllEqualSamplesAreExact)
{
    QuantileSketch sk;
    for (int i = 0; i < 1000; ++i)
        sk.add(0.125);
    EXPECT_EQ(sk.count(), 1000u);
    for (double p : {0.0, 1.0, 50.0, 95.0, 99.0, 100.0})
        EXPECT_EQ(sk.percentile(p), 0.125) << "p" << p;
}

TEST(QuantileSketchTest, SubBucketWidthSpreadStaysWithinMinMax)
{
    // All samples land inside one bucket: [1.0, 1.0625). Every
    // percentile must then be clamped into [min, max] -- never the
    // raw bucket upper bound, which exceeds the largest sample.
    QuantileSketch sk;
    const std::vector<double> vals = {1.0, 1.01, 1.02, 1.05, 1.06};
    for (double v : vals)
        sk.add(v);
    EXPECT_EQ(QuantileSketch::bucketIndex(vals.front()),
              QuantileSketch::bucketIndex(vals.back()));
    for (double p : {0.0, 50.0, 99.0, 100.0}) {
        const double r = sk.percentile(p);
        EXPECT_GE(r, 1.0) << "p" << p;
        EXPECT_LE(r, 1.06) << "p" << p;
    }
}

TEST(QuantileSketchTest, BucketIndexIsMonotone)
{
    Rng rng{7};
    double prev = 0.0;
    int prevIdx = QuantileSketch::bucketIndex(prev);
    std::vector<double> vals;
    for (int i = 0; i < 4096; ++i)
        vals.push_back(std::exp((rng.uniform() - 0.5) * 80.0));
    std::sort(vals.begin(), vals.end());
    for (double v : vals) {
        const int idx = QuantileSketch::bucketIndex(v);
        EXPECT_GE(idx, prevIdx) << v << " after " << prev;
        // The documented bound: upper(v's bucket) in [v, v * 17/16].
        EXPECT_GE(QuantileSketch::bucketUpperBound(idx), v);
        EXPECT_LE(QuantileSketch::bucketUpperBound(idx),
                  v * (1.0 + QuantileSketch::kRelativeError));
        prev = v;
        prevIdx = idx;
    }
}

TEST(QuantileSketchTest, ErrorBoundHoldsAgainstExactPercentiles)
{
    // Log-uniform latencies over ~6 decades, cross-checked against
    // the exact nearest-rank selection in common/percentile.cc: the
    // sketch may overestimate by at most kRelativeError and must
    // never underestimate.
    Rng rng{42};
    QuantileSketch sk;
    std::vector<double> samples;
    for (int i = 0; i < 20000; ++i) {
        const double v = std::pow(10.0, rng.uniform() * 6.0 - 4.0);
        samples.push_back(v);
        sk.add(v);
    }
    std::sort(samples.begin(), samples.end());
    for (double p : {1.0, 10.0, 50.0, 90.0, 95.0, 99.0, 99.9}) {
        const double exact = percentileSorted(samples, p);
        const double approx = sk.percentile(p);
        EXPECT_GE(approx, exact) << "p" << p;
        EXPECT_LE(approx,
                  exact * (1.0 + QuantileSketch::kRelativeError))
            << "p" << p;
    }
    EXPECT_EQ(sk.minValue(), samples.front());
    EXPECT_EQ(sk.maxValue(), samples.back());
}

TEST(QuantileSketchTest, MergeIsOrderIndependent)
{
    Rng rng{9};
    std::vector<QuantileSketch> shards(4);
    QuantileSketch whole;
    for (int i = 0; i < 8000; ++i) {
        const double v = 1e-3 + rng.uniform() * 10.0;
        shards[i % 4].add(v);
        whole.add(v);
    }

    auto mergedIn = [&](std::vector<int> order) {
        QuantileSketch m;
        for (int s : order)
            m.merge(shards[std::size_t(s)]);
        return m;
    };
    const QuantileSketch a = mergedIn({0, 1, 2, 3});
    const QuantileSketch b = mergedIn({3, 1, 0, 2});

    EXPECT_EQ(a.count(), whole.count());
    EXPECT_EQ(a.buckets(), b.buckets());
    EXPECT_EQ(a.buckets(), whole.buckets());
    EXPECT_EQ(a.minValue(), b.minValue());
    EXPECT_EQ(a.maxValue(), b.maxValue());
    for (double p : {50.0, 95.0, 99.0}) {
        EXPECT_EQ(a.percentile(p), b.percentile(p)) << "p" << p;
        EXPECT_EQ(a.percentile(p), whole.percentile(p)) << "p" << p;
    }
}

TEST(QuantileSketchTest, EmptyAndNaNHandling)
{
    QuantileSketch sk;
    EXPECT_TRUE(sk.empty());
    EXPECT_TRUE(std::isnan(sk.percentile(99.0)));
    sk.add(std::numeric_limits<double>::quiet_NaN());
    EXPECT_TRUE(sk.empty()) << "NaN samples are excluded";
    sk.add(2.0);
    EXPECT_EQ(sk.count(), 1u);
    EXPECT_EQ(sk.percentile(50.0), 2.0);
}

TEST(TimeSeriesWindowTest, EdgeSamplesLandDeterministically)
{
    // Power-of-two window: t * (1/W) is exact, so an edge sample
    // lands in the upper window -- the documented rule.
    const double inv = 1.0 / 0.25;
    EXPECT_EQ(obs::windowIndexOf(0.0, inv), 0);
    EXPECT_EQ(obs::windowIndexOf(0.249999, inv), 0);
    EXPECT_EQ(obs::windowIndexOf(0.25, inv), 1);
    EXPECT_EQ(obs::windowIndexOf(0.5, inv), 2);
    EXPECT_EQ(obs::windowIndexOf(
                  std::nextafter(0.25, 0.0), inv),
              0);

    // Non-power-of-two widths still give one fixed, run-independent
    // answer per (t, W) pair -- spot-check stability over a scan.
    const double inv3 = 1.0 / 0.3;
    for (int i = 0; i < 1000; ++i) {
        const double t = double(i) * 0.0301;
        EXPECT_EQ(obs::windowIndexOf(t, inv3),
                  std::int64_t(std::floor(t * inv3)));
    }
}

TEST(TimeSeriesWindowTest, UpperEdgeMatchesFloorExactly)
{
    // windowUpperEdge must be the exact threshold of the floor rule:
    // the edge itself crosses, its predecessor does not. Cover both
    // power-of-two and awkward widths across a range of windows.
    for (const double windowSec : {0.25, 0.5, 1.0, 0.3, 0.1, 0.0301}) {
        const double inv = 1.0 / windowSec;
        for (const std::int64_t w :
             {std::int64_t(0), std::int64_t(1), std::int64_t(7),
              std::int64_t(1000), std::int64_t(123456789)}) {
            const double e = obs::windowUpperEdge(w, windowSec, inv);
            EXPECT_GT(obs::windowIndexOf(e, inv), w)
                << "W=" << windowSec << " w=" << w;
            const double below = std::nextafter(
                e, -std::numeric_limits<double>::infinity());
            EXPECT_LE(obs::windowIndexOf(below, inv), w)
                << "W=" << windowSec << " w=" << w;
        }
    }
}

/** Bitwise equality, stricter than EXPECT_EQ on doubles. */
bool
sameBits(double a, double b)
{
    return std::bit_cast<std::uint64_t>(a) ==
           std::bit_cast<std::uint64_t>(b);
}

TEST(DecomposeLatencyTest, FastPathIsExact)
{
    const LatencyComponents c = obs::decomposeLatency(1.5, 0.5, 0.0,
                                                      0.0);
    EXPECT_TRUE(sameBits(obs::reconstructLatency(c), 1.5));
    EXPECT_EQ(c.queueWaitSec, 1.0);
    EXPECT_EQ(c.switchSec, 0.0);
    EXPECT_EQ(c.migrationSec, 0.0);
    EXPECT_EQ(c.serviceSec, 0.5);
}

TEST(DecomposeLatencyTest, ExactnessFuzzAcrossMagnitudes)
{
    Rng rng{1234};
    for (int i = 0; i < 200000; ++i) {
        // Magnitudes spanning ~12 decades, with overlaps that are
        // often zero (fast path) and sometimes larger than the
        // residual wait (forcing the slow-path fold-down ladder).
        const double scale = std::pow(10.0, rng.uniform() * 12.0 - 6.0);
        const double service = rng.uniform() * scale;
        const double wait = rng.uniform() * scale;
        const double total = service + wait;
        const bool stalls = (rng.next() & 3) == 0;
        const double sw =
            stalls ? rng.uniform() * wait * 1.5 : 0.0;
        const double mig =
            stalls && (rng.next() & 1) ? rng.uniform() * wait : 0.0;
        const LatencyComponents c =
            obs::decomposeLatency(total, service, sw, mig);
        ASSERT_TRUE(sameBits(obs::reconstructLatency(c), total))
            << "total=" << total << " service=" << service
            << " sw=" << sw << " mig=" << mig;
        EXPECT_GE(c.serviceSec, 0.0);
    }
}

TEST(ComponentWindowsTest, RollsWindowsAndCountsTargets)
{
    ComponentWindows cw;
    cw.configure(1.0, 0.6, 1.0); // 1s windows, target 0.6s, global 1s

    auto step = [&](double end, double total) {
        const LatencyComponents c =
            obs::decomposeLatency(total, total * 0.5, 0.0, 0.0);
        cw.record(end, total, c);
    };
    step(0.3, 0.5); // window 0, within both targets
    step(0.9, 0.8); // window 0, misses 0.6 target, within global
    step(2.1, 1.5); // window 2, misses both
    cw.finish();

    ASSERT_EQ(cw.rows().size(), 2u);
    const ComponentWindows::Row &w0 = cw.rows()[0];
    EXPECT_EQ(w0.w, 0);
    EXPECT_EQ(w0.steps, 2u);
    EXPECT_EQ(w0.withinTarget, 1u);
    EXPECT_EQ(w0.withinGlobal, 2u);
    EXPECT_DOUBLE_EQ(w0.totalSec, 1.3);
    EXPECT_DOUBLE_EQ(w0.serviceSec, 0.65);
    EXPECT_EQ(w0.sketch.count(), 2u);
    const ComponentWindows::Row &w2 = cw.rows()[1];
    EXPECT_EQ(w2.w, 2);
    EXPECT_EQ(w2.steps, 1u);
    EXPECT_EQ(w2.withinTarget, 0u);
    EXPECT_EQ(w2.withinGlobal, 0u);
}

TEST(SloSpecTest, ParseAcceptsGlobalAndPerPriority)
{
    obs::SloSpec s;
    std::string err;
    ASSERT_TRUE(obs::parseSloSpec("0.5", &s, &err)) << err;
    EXPECT_DOUBLE_EQ(s.globalTargetSec, 0.5);
    EXPECT_TRUE(s.perPriority.empty());
    EXPECT_DOUBLE_EQ(s.targetFor(7), 0.5);

    s = {};
    ASSERT_TRUE(obs::parseSloSpec("0.5,1:0.2,0:0.8", &s, &err)) << err;
    EXPECT_DOUBLE_EQ(s.globalTargetSec, 0.5);
    ASSERT_EQ(s.perPriority.size(), 2u);
    EXPECT_EQ(s.perPriority[0].first, 0) << "sorted by priority";
    EXPECT_DOUBLE_EQ(s.targetFor(1), 0.2);
    EXPECT_DOUBLE_EQ(s.targetFor(0), 0.8);
    EXPECT_DOUBLE_EQ(s.targetFor(2), 0.5) << "falls back to global";
}

TEST(SloSpecTest, ParseRejectsMalformedSpecs)
{
    for (const char *bad :
         {"", "x", "1:", ":0.5", "0", "-1", "1:0", "1:-2",
          "1:0.2,1:0.3", "0.5,0.6", "1:0.2,"}) {
        obs::SloSpec s;
        std::string err;
        EXPECT_FALSE(obs::parseSloSpec(bad, &s, &err))
            << "accepted '" << bad << "'";
        EXPECT_NE(err.find("--slo-p99-s"), std::string::npos) << bad;
    }
}

/** A serve job with explicit steps, arrival and priority. */
TenantJob
job(const std::string &name, double arrival, std::uint64_t steps,
    int priority)
{
    TenantJob j;
    j.name = name;
    j.model = "SqueezeNet";
    j.batch = 8;
    j.arrivalSec = arrival;
    j.steps = steps;
    j.priority = priority;
    return j;
}

TEST(ServeTelemetryTest, DecompositionAuditsCleanAndSeriesAppear)
{
    ServeSpec s;
    s.workload.name = "test";
    s.workload.jobs = {job("a", 0.0, 40, 0), job("b", 0.1, 40, 1)};
    s.config = divaDefault(true);
    s.policy = SchedPolicy::kRoundRobin;

    obs::RunTelemetry tel;
    tel.windowSec = 1.0;
    std::string err;
    ASSERT_TRUE(obs::parseSloSpec("0.5,1:0.25", &tel.slo, &err)) << err;
    s.opts.telemetry = &tel;

    IterationCost cost;
    cost.seconds = 0.05;
    cost.energyJ = 1.0;
    cost.resolvedBatch = 8;
    SwitchCost sw;
    sw.seconds = 0.01;
    sw.energyJ = 0.5;
    sw.dramBytes = 1024;
    const ServeResult r =
        runServeLoop(s, {cost, cost}, sw);
    ASSERT_TRUE(r.ok()) << r.error;

    EXPECT_EQ(tel.decompSteps, 80u);
    EXPECT_EQ(tel.decompExactFailures, 0u);
    EXPECT_GT(tel.snapshot.series.count("serve.rr.tenant.a.steps"),
              0u);
    EXPECT_GT(tel.snapshot.series.count("serve.rr.lat.all.service_s"),
              0u);
    EXPECT_GT(tel.snapshot.series.count("serve.rr.switches"), 0u);
    EXPECT_GT(tel.snapshot.sketches.count(
                  "serve.rr.lat.all.step_latency_s"),
              0u);
    ASSERT_TRUE(tel.report.any());

    // Per window, the component sums must reconstruct the total to
    // rounding (the bitwise invariant is per step; window sums of
    // each component accumulate independently).
    const auto &series = tel.snapshot.series;
    const auto &total = series.at("serve.rr.lat.all.total_s").points;
    for (const auto &[w, t] : total) {
        const double sum =
            series.at("serve.rr.lat.all.queue_wait_s").points.at(w) +
            series.at("serve.rr.lat.all.switch_s").points.at(w) +
            series.at("serve.rr.lat.all.migration_s").points.at(w) +
            series.at("serve.rr.lat.all.service_s").points.at(w);
        EXPECT_NEAR(sum, t, 1e-9 * std::max(1.0, std::abs(t)));
    }

    // The telemetry hook must not perturb the serve results: a run
    // without it emits identical CSV/JSON bytes.
    ServeSpec off = s;
    off.opts.telemetry = nullptr;
    const ServeResult r2 = runServeLoop(off, {cost, cost}, sw);
    ASSERT_TRUE(r2.ok()) << r2.error;
    auto emit = [](const ServeResult &res) {
        std::ostringstream os;
        writeServeCsv(os, {res});
        writeServeJson(os, {res});
        return os.str();
    };
    EXPECT_EQ(emit(r), emit(r2));
}

TEST(FleetTelemetryTest, ByteIdenticalAcrossThreadsAndReruns)
{
    std::string err;
    const auto gen = parseTraceGenSpec(
        "diurnal:rate=24,horizon=6,seed=11,qos=4,hold=4,cap=160",
        &err);
    ASSERT_TRUE(gen.has_value()) << err;
    const ArrivalTrace t = generateTrace(*gen);
    ASSERT_FALSE(t.jobs.empty());

    const auto group = parsePodTemplate("df=DiVa,count=3", &err);
    ASSERT_TRUE(group.has_value()) << err;
    const auto extra = parsePodTemplate("df=OS", &err);
    ASSERT_TRUE(extra.has_value()) << err;
    FleetSpec spec = buildFleet({*group, *extra});
    spec.placement = PlacementKind::kLoadAware;
    spec.rebalance.enabled = true;
    spec.controlIntervalSec = 0.5;

    auto runWith = [&](int threads, std::string *fleetBytes) {
        obs::RunTelemetry tel;
        std::string perr;
        EXPECT_TRUE(
            obs::parseSloSpec("0.5,1:0.25", &tel.slo, &perr))
            << perr;
        SweepOptions opts;
        opts.threads = threads;
        SweepRunner runner(opts);
        const FleetResult r =
            simulateFleet(spec, t, runner, threads, nullptr, &tel);
        EXPECT_TRUE(r.ok()) << r.error;
        EXPECT_GT(tel.decompSteps, 0u);
        EXPECT_EQ(tel.decompExactFailures, 0u);
        EXPECT_FALSE(tel.snapshot.empty());
        std::ostringstream fb;
        writeFleetTenantCsv(fb, r);
        writeFleetPodCsv(fb, r);
        writeFleetJson(fb, r, true);
        *fleetBytes = fb.str();
        std::ostringstream ts;
        tel.writeJson(ts);
        std::ostringstream cs;
        tel.writeCsv(cs);
        return ts.str() + "\n====\n" + cs.str();
    };

    std::string fleet1, fleet4, fleetWarm;
    const std::string serial = runWith(1, &fleet1);
    const std::string threaded = runWith(4, &fleet4);
    EXPECT_EQ(serial, threaded);
    EXPECT_EQ(fleet1, fleet4);

    // Rerun against the warm plan cache: cache state must not leak
    // into either the fleet emitters or the telemetry document.
    const std::string warm = runWith(4, &fleetWarm);
    EXPECT_EQ(serial, warm);
    EXPECT_EQ(fleet1, fleetWarm);

    // Telemetry off: the fleet CSV/JSON stays bitwise what it was.
    SweepOptions opts;
    SweepRunner runner(opts);
    const FleetResult off = simulateFleet(spec, t, runner, 1);
    ASSERT_TRUE(off.ok()) << off.error;
    std::ostringstream ob;
    writeFleetTenantCsv(ob, off);
    writeFleetPodCsv(ob, off);
    writeFleetJson(ob, off, true);
    EXPECT_EQ(ob.str(), fleet1);
}

} // namespace
} // namespace diva
