/**
 * @file
 * Parameterized property tests sweeping GEMM shapes across all three
 * engine models: invariants that must hold for every (shape, engine)
 * combination, plus the paper's comparative claims (outer-product
 * robustness to K, WS/OS sensitivity to K).
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "arch/accelerator_config.h"
#include "gemm/engine.h"

namespace diva
{
namespace
{

AcceleratorConfig
configFor(const std::string &which)
{
    if (which == "ws")
        return tpuV3Ws();
    if (which == "os")
        return systolicOs(false);
    return divaDefault(false);
}

using ShapeParam = std::tuple<std::string, std::int64_t, std::int64_t,
                              std::int64_t>;

class EngineShapeSweep : public ::testing::TestWithParam<ShapeParam>
{
  protected:
    void
    SetUp() override
    {
        const auto &[engine, m, k, n] = GetParam();
        cfg_ = configFor(engine);
        shape_ = GemmShape(m, k, n);
        result_ = GemmEngineModel::create(cfg_)->simulate(shape_);
    }

    AcceleratorConfig cfg_;
    GemmShape shape_;
    GemmResult result_;
};

TEST_P(EngineShapeSweep, CyclesPositive)
{
    EXPECT_GT(result_.cycles, 0u);
}

TEST_P(EngineShapeSweep, UtilizationInUnitInterval)
{
    const double u = result_.utilization(cfg_);
    EXPECT_GT(u, 0.0);
    EXPECT_LE(u, 1.0);
}

TEST_P(EngineShapeSweep, UsefulMacsExact)
{
    EXPECT_EQ(result_.usefulMacs, shape_.macs());
}

TEST_P(EngineShapeSweep, CyclesAtLeastComputeAndMemory)
{
    EXPECT_GE(result_.cycles, result_.computeCycles);
    EXPECT_GE(result_.cycles, result_.memoryCycles);
}

TEST_P(EngineShapeSweep, ComputeCyclesLowerBound)
{
    // No engine can beat peak-MAC throughput.
    const Cycles min_cycles =
        Cycles(ceilDiv(shape_.macs(), Macs(cfg_.macsPerCycle())));
    EXPECT_GE(result_.computeCycles, min_cycles);
}

TEST_P(EngineShapeSweep, DramTrafficCoversCompulsoryBytes)
{
    // At least the output must be written (default options).
    EXPECT_GE(result_.dram.writeBytes,
              shape_.outBytes(cfg_.accumBytes));
    EXPECT_GE(result_.dram.readBytes,
              Bytes(0));
}

TEST_P(EngineShapeSweep, DoublingMNeverReducesCycles)
{
    // Note GE, not GT: the outer-product engine performs M*N MACs per
    // cycle, so growing M within one PE-array tile is free -- that is
    // exactly its robustness property.
    const GemmShape doubled(shape_.m * 2, shape_.k, shape_.n);
    const GemmResult r2 =
        GemmEngineModel::create(cfg_)->simulate(doubled);
    EXPECT_GE(r2.computeCycles, result_.computeCycles);
    EXPECT_EQ(r2.usefulMacs, 2 * result_.usefulMacs);
}

TEST_P(EngineShapeSweep, DoublingKIncreasesCycles)
{
    const GemmShape doubled(shape_.m, shape_.k * 2, shape_.n);
    const GemmResult r2 =
        GemmEngineModel::create(cfg_)->simulate(doubled);
    EXPECT_GE(r2.computeCycles, result_.computeCycles);
}

INSTANTIATE_TEST_SUITE_P(
    AllEnginesAllShapes, EngineShapeSweep,
    ::testing::Combine(
        ::testing::Values("ws", "os", "outer"),
        ::testing::Values<std::int64_t>(1, 17, 128, 1000),
        ::testing::Values<std::int64_t>(1, 32, 128, 700),
        ::testing::Values<std::int64_t>(1, 64, 128, 513)),
    [](const auto &info) {
        return std::get<0>(info.param) + "_m" +
               std::to_string(std::get<1>(info.param)) + "_k" +
               std::to_string(std::get<2>(info.param)) + "_n" +
               std::to_string(std::get<3>(info.param));
    });

/** Comparative sweep: DiVa vs WS on per-example-shaped GEMMs. */
class PerExampleShapeSweep
    : public ::testing::TestWithParam<std::tuple<std::int64_t,
                                                 std::int64_t>>
{
};

TEST_P(PerExampleShapeSweep, OuterProductBeatsWsComputeOnSmallK)
{
    const auto [mn, k] = GetParam();
    const GemmShape s(mn, k, mn);
    GemmOptions opt;
    opt.writeOutputToDram = false;
    const AcceleratorConfig ws = tpuV3Ws();
    const AcceleratorConfig dv = divaDefault(false);
    const GemmResult rw =
        GemmEngineModel::create(ws)->simulateBatched(s, 32, opt);
    const GemmResult rd =
        GemmEngineModel::create(dv)->simulateBatched(s, 32, opt);
    // Small-K GEMMs: the outer-product engine's compute occupancy must
    // be strictly better than WS (the paper's Section IV-B claim).
    EXPECT_LT(rd.computeCycles, rw.computeCycles)
        << "shape " << s.str();
}

INSTANTIATE_TEST_SUITE_P(
    SmallK, PerExampleShapeSweep,
    ::testing::Combine(::testing::Values<std::int64_t>(256, 576, 1024,
                                                       4096),
                       ::testing::Values<std::int64_t>(1, 4, 16, 32)));

} // namespace
} // namespace diva
