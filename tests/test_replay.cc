/**
 * @file
 * Tests of open-loop trace replay: departures ending sessions mid-run,
 * open-loop step issue (latency measured against the trace clock and
 * growing under overload), EDF <= FIFO on p99 step latency in a
 * constructed overload, admission control keeping the admitted
 * subset's QoS attainment above the uncontrolled run, and
 * byte-determinism of replayed CSV across runner thread counts and
 * reruns.
 */

#include <cmath>
#include <limits>
#include <sstream>

#include <gtest/gtest.h>

#include "arrivals/generate.h"
#include "arrivals/replay.h"
#include "tenant/emit.h"
#include "tenant/serve.h"

namespace diva
{
namespace
{

TenantJob
job(const std::string &name, double arrival, std::uint64_t steps,
    double rate)
{
    TenantJob j;
    j.name = name;
    j.model = "SqueezeNet"; // irrelevant when costs are injected
    j.batch = 8;
    j.arrivalSec = arrival;
    j.steps = steps;
    j.qosStepsPerSec = rate;
    return j;
}

ServeSpec
spec(std::vector<TenantJob> jobs, SchedPolicy policy)
{
    ServeSpec s;
    s.workload.name = "test";
    s.workload.jobs = std::move(jobs);
    s.config = divaDefault(true);
    s.policy = policy;
    return s;
}

IterationCost
cost(double seconds)
{
    IterationCost c;
    c.seconds = seconds;
    c.energyJ = 1.0;
    c.resolvedBatch = 8;
    return c;
}

const SwitchCost kFreeSwitch{};

TEST(Departure, SessionEndsAtDepartureWithStepsOutstanding)
{
    // 1 s/step, arrives at 0, departs at 3.5: exactly 3 steps run and
    // the session ends at its departure, not the sim end.
    TenantJob leaves = job("leaves", 0.0, 100, 0.0);
    leaves.departSec = 3.5;
    const ServeResult r =
        runServeLoop(spec({leaves, job("stays", 0.0, 10, 0.0)},
                          SchedPolicy::kFifo),
                     {cost(1.0), cost(1.0)}, kFreeSwitch);
    ASSERT_TRUE(r.ok()) << r.error;
    const TenantMetrics &t = r.tenants[0];
    EXPECT_EQ(t.stepsDone, 3u);
    EXPECT_FALSE(t.completed);
    EXPECT_TRUE(t.departed);
    EXPECT_LE(t.endSec, 3.5 + 1e-9);
    EXPECT_EQ(r.tenants[1].stepsDone, 10u) << "the other tenant runs on";
    EXPECT_FALSE(r.tenants[1].departed);
}

TEST(Departure, UnboundedStepsTerminateViaDeparture)
{
    // steps=0 with a departure is a bounded session: no wall needed.
    TenantJob session = job("session", 1.0, 0, 0.0);
    session.departSec = 5.0;
    const ServeResult r = runServeLoop(
        spec({session}, SchedPolicy::kFifo), {cost(1.0)}, kFreeSwitch);
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.tenants[0].stepsDone, 4u) << "t=1..5 fits 4 steps";
    EXPECT_TRUE(r.tenants[0].departed);

    // Without the departure the same job is rejected (cannot end).
    const ServeResult bad = runServeLoop(
        spec({job("forever", 1.0, 0, 0.0)}, SchedPolicy::kFifo),
        {cost(1.0)}, kFreeSwitch);
    EXPECT_FALSE(bad.ok());
}

TEST(Departure, ValidationRejectsDepartureBeforeArrival)
{
    TenantJob backwards = job("backwards", 5.0, 4, 0.0);
    backwards.departSec = 2.0;
    EXPECT_NE(backwards.validationError(false).find("departure"),
              std::string::npos);
    const ServeResult r =
        runServeLoop(spec({backwards}, SchedPolicy::kFifo),
                     {cost(1.0)}, kFreeSwitch);
    EXPECT_FALSE(r.ok());

    TenantJob negative = job("negative", -1.0, 4, 0.0);
    EXPECT_FALSE(negative.validationError(false).empty());
    TenantJob inf_qos = job("inf", 0.0, 4, 0.0);
    inf_qos.qosStepsPerSec = std::numeric_limits<double>::infinity();
    EXPECT_FALSE(inf_qos.validationError(false).empty());
    TenantJob nan_dl = job("nan", 0.0, 4, 0.0);
    nan_dl.qosDeadlineSec = std::nan("");
    EXPECT_FALSE(nan_dl.validationError(false).empty());
}

TEST(OpenLoop, StepsIssueByTheTraceClock)
{
    // Closed loop: a lone 0.1 s/step tenant with a 1 step/s target
    // races ahead of its schedule (10 steps/s). Open loop: steps wait
    // for their due times, so the run takes ~10 s and every latency
    // is the bare service time.
    ServeSpec s = spec({job("paced", 0.0, 10, 1.0)}, SchedPolicy::kFifo);
    const ServeResult closed =
        runServeLoop(s, {cost(0.1)}, kFreeSwitch);
    ASSERT_TRUE(closed.ok()) << closed.error;
    EXPECT_LT(closed.makespanSec, 2.0);

    s.opts.openLoop = true;
    const ServeResult open = runServeLoop(s, {cost(0.1)}, kFreeSwitch);
    ASSERT_TRUE(open.ok()) << open.error;
    // Step k due at k-1; the last (10th) step is due at t=9 and takes
    // 0.1 s.
    EXPECT_NEAR(open.makespanSec, 9.1, 1e-9);
    EXPECT_EQ(open.tenants[0].stepsDone, 10u);
    EXPECT_EQ(open.tenants[0].stepLatency.count, 10u);
    EXPECT_NEAR(open.tenants[0].stepLatency.p99Sec, 0.1, 1e-9);
    EXPECT_NEAR(open.tenants[0].stepLatency.p50Sec, 0.1, 1e-9);
}

TEST(OpenLoop, OverloadGrowsTailLatency)
{
    // Offered load 2 steps/s on a 1 step/s machine: the queue builds
    // and completion drifts ever further behind the due times, so p99
    // latency far exceeds p50.
    ServeSpec s =
        spec({job("swamped", 0.0, 16, 2.0)}, SchedPolicy::kFifo);
    s.opts.openLoop = true;
    const ServeResult r = runServeLoop(s, {cost(1.0)}, kFreeSwitch);
    ASSERT_TRUE(r.ok()) << r.error;
    const LatencyStats &lat = r.tenants[0].stepLatency;
    ASSERT_EQ(lat.count, 16u);
    // Step k due at (k-1)/2 but completes at k: latency grows
    // linearly from 1 s to 16 - 7.5 = 8.5 s.
    EXPECT_NEAR(lat.maxSec, 8.5, 1e-9);
    EXPECT_NEAR(lat.p99Sec, 8.5, 1e-9);
    EXPECT_NEAR(lat.p50Sec, 4.5, 1e-9);
    EXPECT_GT(lat.p99Sec, 1.5 * lat.p50Sec);
}

TEST(OpenLoop, EdfNoWorseThanFifoOnP99UnderOverload)
{
    // Constructed overload: a best-effort batch tenant (no target,
    // always runnable) plus a rate tenant whose steps are issued one
    // per second, on a 1 step/s machine. FIFO ties on arrival and
    // keeps serving the batch tenant's backlog, so the rate tenant's
    // due steps queue for 12 s; EDF serves the finite deadlines first
    // and the rate tenant's latency stays at the bare service time.
    const std::vector<TenantJob> mix = {
        job("batch", 0.0, 12, 0.0), job("rate", 0.0, 12, 1.0)};
    ServeSpec fifo = spec(mix, SchedPolicy::kFifo);
    fifo.opts.openLoop = true;
    ServeSpec edf = spec(mix, SchedPolicy::kEdf);
    edf.opts.openLoop = true;
    const std::vector<IterationCost> costs = {cost(1.0), cost(1.0)};
    const ServeResult f = runServeLoop(fifo, costs, kFreeSwitch);
    const ServeResult e = runServeLoop(edf, costs, kFreeSwitch);
    ASSERT_TRUE(f.ok()) << f.error;
    ASSERT_TRUE(e.ok()) << e.error;
    EXPECT_LE(e.aggStepLatency.p99Sec, f.aggStepLatency.p99Sec);
    EXPECT_LT(e.aggStepLatency.p95Sec, f.aggStepLatency.p95Sec);
    EXPECT_LT(e.tenants[1].stepLatency.p99Sec,
              f.tenants[1].stepLatency.p99Sec)
        << "the rate tenant is the one FIFO starves";
    EXPECT_GT(e.meanQosAttainmentPct, f.meanQosAttainmentPct);
}

TEST(Replay, AdmissionKeepsAttainmentAboveUncontrolledRun)
{
    // Three rate tenants demanding 0.6 of the machine each (1.8x
    // capacity). Uncontrolled, everyone misses; with admission, one
    // is shed and the admitted pair meets its schedule.
    auto mk = [&](bool admission) {
        ReplaySpec rs;
        rs.trace.name = "overload";
        for (int i = 0; i < 3; ++i) {
            TenantJob j =
                job("t" + std::to_string(i) + ":SqueezeNet", 0.0, 0,
                    0.0);
            j.steps = 20;
            j.qosStepsPerSec = 0.6; // x cost 1.0 => demand 0.6
            j.priority = i;
            rs.trace.jobs.push_back(j);
        }
        rs.config = divaDefault(true);
        rs.policy = SchedPolicy::kEdf;
        rs.admission = admission;
        return rs;
    };
    // Inject the costs by replaying through the serve loop directly:
    // price with serveWithAdmission/simulateServe would simulate the
    // real model, so instead drive runServeLoop through the same
    // specs the replay engine builds.
    const std::vector<IterationCost> costs = {cost(1.0), cost(1.0),
                                              cost(1.0)};
    ServeSpec uncontrolled;
    uncontrolled.workload = mk(false).trace.workload();
    uncontrolled.config = divaDefault(true);
    uncontrolled.policy = SchedPolicy::kEdf;
    uncontrolled.opts.openLoop = true;
    const ServeResult all =
        runServeLoop(uncontrolled, costs, kFreeSwitch);
    ASSERT_TRUE(all.ok()) << all.error;

    const AdmissionDecision d = decideAdmission(
        uncontrolled.workload.jobs, costs, AdmissionOptions{});
    EXPECT_EQ(d.admittedCount, 1u) << "0.6 + 0.6 already exceeds 1.0";
    ServeSpec admitted = uncontrolled;
    admitted.workload.jobs.clear();
    std::vector<IterationCost> admitted_costs;
    for (std::size_t i = 0; i < d.admitted.size(); ++i)
        if (d.admitted[i]) {
            admitted.workload.jobs.push_back(
                uncontrolled.workload.jobs[i]);
            admitted_costs.push_back(costs[i]);
        }
    const ServeResult kept =
        runServeLoop(admitted, admitted_costs, kFreeSwitch);
    ASSERT_TRUE(kept.ok()) << kept.error;
    EXPECT_GT(kept.meanQosAttainmentPct, all.meanQosAttainmentPct)
        << "shedding infeasible demand must raise attainment";
    EXPECT_DOUBLE_EQ(kept.meanQosAttainmentPct, 100.0);
}

TEST(Replay, FullPipelineAdmissionReportsRejectedRows)
{
    // Real pipeline overload: per-tenant QoS targets far beyond the
    // isolated rates force the controller to shed. Rejected tenants
    // keep their rows with admitted=false and zero service.
    ReplaySpec rs;
    rs.trace.name = "pipeline-overload";
    for (int i = 0; i < 3; ++i) {
        TenantJob j;
        j.name = "s" + std::to_string(i) + ":SqueezeNet";
        j.model = "SqueezeNet";
        j.batch = 8;
        j.steps = 4;
        j.arrivalSec = 0.0001 * i;
        j.priority = i;
        j.qosStepsPerSec = 1e7; // demand >> 1 for any real cost
        rs.trace.jobs.push_back(j);
    }
    rs.config = divaDefault(true);
    rs.policy = SchedPolicy::kEdf;
    rs.admission = true;
    const ServeResult r = replayTrace(rs);
    ASSERT_TRUE(r.ok()) << r.error;
    ASSERT_EQ(r.tenants.size(), 3u);
    std::size_t admitted = 0;
    for (const TenantMetrics &t : r.tenants)
        admitted += t.admitted ? 1 : 0;
    EXPECT_LT(admitted, 3u) << "1e7 steps/s cannot all be feasible";
    for (const TenantMetrics &t : r.tenants)
        if (!t.admitted) {
            EXPECT_EQ(t.stepsDone, 0u);
            EXPECT_TRUE(std::isnan(t.qosAttainmentPct));
            EXPECT_EQ(t.stepLatency.count, 0u);
        }

    // The uncontrolled replay serves everyone (worse attainment or
    // equal, never more admitted context).
    rs.admission = false;
    const ServeResult open = replayTrace(rs);
    ASSERT_TRUE(open.ok()) << open.error;
    for (const TenantMetrics &t : open.tenants)
        EXPECT_TRUE(t.admitted);
}

TEST(Replay, AdmissionSeesAutoFairShareTargets)
{
    // With --qos auto the fair-share targets are assigned inside the
    // pipeline; the admission controller must price those targets,
    // not the unset (zero-demand) jobs. Each of three identical
    // tenants demands a 1/3 fair share, so a 0.5 cap admits exactly
    // one plus nothing else -- if admission ran before target
    // assignment it would see zero demand and admit all three.
    ServeSpec s;
    s.workload = defaultWorkload(3, 4, 8, 0.0);
    s.config = divaDefault(true);
    s.policy = SchedPolicy::kEdf;
    s.opts.autoQosFairShare = true;
    // Identical models so every fair share is exactly 1/3.
    for (TenantJob &j : s.workload.jobs)
        j.model = "SqueezeNet";
    AdmissionOptions cap;
    cap.utilizationCap = 0.5;
    SweepRunner runner;
    const ServeResult r = serveWithAdmission(s, cap, runner);
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.admittedCount(), 1u)
        << "two 1/3 shares exceed the 0.5 cap";
    for (const TenantMetrics &t : r.tenants)
        EXPECT_GT(t.job.qosStepsPerSec, 0.0)
            << "reported jobs must echo the priced fair-share target";
}

TEST(Replay, GeneratedTraceByteIdenticalAcrossThreadsAndReruns)
{
    TraceGenSpec gen;
    gen.kind = ArrivalKind::kPoisson;
    gen.ratePerSec = 6.0;
    gen.horizonSec = 1.0;
    gen.seed = 11;
    gen.steps = 4;
    gen.qosStepsPerSec = 2.0;
    const ArrivalTrace trace = generateTrace(gen);
    ASSERT_FALSE(trace.jobs.empty());

    auto emit = [&](int threads) {
        SweepOptions opts;
        opts.threads = threads;
        SweepRunner runner(opts);
        std::vector<ServeResult> serves;
        for (SchedPolicy p : allPolicies()) {
            ReplaySpec rs;
            rs.trace = trace;
            rs.config = divaDefault(true);
            rs.policy = p;
            serves.push_back(replayTrace(rs, runner));
            EXPECT_TRUE(serves.back().ok()) << serves.back().error;
        }
        std::ostringstream csv, json;
        writeServeCsv(csv, serves);
        writeServeJson(json, serves);
        return csv.str() + "\n===\n" + json.str();
    };
    const std::string serial = emit(1);
    EXPECT_EQ(serial, emit(4));
    EXPECT_EQ(serial, emit(1)) << "reruns must replay identically";
    EXPECT_NE(serial.find("lat_p99_s"), std::string::npos);
}

} // namespace
} // namespace diva
