/**
 * @file
 * Tests for the Figure-4 memory-allocation model and the max-batch
 * search of Section III-A.
 */

#include <gtest/gtest.h>

#include "models/zoo.h"
#include "train/memory_model.h"

namespace diva
{
namespace
{

TEST(MemoryModel, SgdHasNoPerExampleGrads)
{
    const MemoryBreakdown mb =
        trainingMemory(resnet50(), TrainingAlgorithm::kSgd, 64);
    EXPECT_EQ(mb.perExampleGrad, 0u);
    EXPECT_GT(mb.weights, 0u);
    EXPECT_GT(mb.activations, 0u);
    EXPECT_EQ(mb.perBatchGrad, mb.weights);
}

TEST(MemoryModel, DpSgdPerExampleGradsScaleWithBatch)
{
    const Network net = resnet50();
    const MemoryBreakdown m8 =
        trainingMemory(net, TrainingAlgorithm::kDpSgd, 8);
    const MemoryBreakdown m64 =
        trainingMemory(net, TrainingAlgorithm::kDpSgd, 64);
    EXPECT_EQ(m8.perExampleGrad, 8u * m8.weights);
    EXPECT_EQ(m64.perExampleGrad, 64u * m64.weights);
}

TEST(MemoryModel, PerExampleGradsDominateDpSgd)
{
    // Figure 4: per-example weight gradients average ~78% of DP-SGD's
    // footprint at realistic batch sizes.
    const Network net = resnet152();
    const int batch =
        maxBatchSize(net, TrainingAlgorithm::kDpSgd, 16_GiB);
    const MemoryBreakdown mb =
        trainingMemory(net, TrainingAlgorithm::kDpSgd, batch);
    EXPECT_GT(double(mb.perExampleGrad), 0.6 * double(mb.total()));
}

TEST(MemoryModel, DpSgdRTransientBufferMuchSmaller)
{
    const Network net = resnet152();
    const MemoryBreakdown dp =
        trainingMemory(net, TrainingAlgorithm::kDpSgd, 32);
    const MemoryBreakdown dpr =
        trainingMemory(net, TrainingAlgorithm::kDpSgdR, 32);
    EXPECT_LT(dpr.perExampleGrad, dp.perExampleGrad / 4);
    EXPECT_LT(dpr.total(), dp.total());
    // Figure 4: DP-SGD(R) reduces DP-SGD's footprint ~3.8x on average;
    // require at least 2x here.
    EXPECT_GT(double(dp.total()) / double(dpr.total()), 2.0);
}

TEST(MemoryModel, TotalsAreSumOfParts)
{
    const MemoryBreakdown mb =
        trainingMemory(bertBase(), TrainingAlgorithm::kDpSgd, 8);
    EXPECT_EQ(mb.total(), mb.weights + mb.activations + mb.perBatchGrad +
                              mb.perExampleGrad + mb.other);
}

TEST(MemoryModel, MonotonicInBatch)
{
    const Network net = mobilenet();
    for (auto algo :
         {TrainingAlgorithm::kSgd, TrainingAlgorithm::kDpSgd,
          TrainingAlgorithm::kDpSgdR}) {
        Bytes prev = 0;
        for (int b : {1, 2, 8, 64, 512}) {
            const Bytes t = trainingMemory(net, algo, b).total();
            EXPECT_GT(t, prev);
            prev = t;
        }
    }
}

TEST(MaxBatch, OrderingAcrossAlgorithms)
{
    // Section III-A: max batch SGD ~ DP-SGD(R) >> DP-SGD.
    for (const auto &net : allModels()) {
        const int sgd =
            maxBatchSize(net, TrainingAlgorithm::kSgd, 16_GiB);
        const int dp =
            maxBatchSize(net, TrainingAlgorithm::kDpSgd, 16_GiB);
        const int dpr =
            maxBatchSize(net, TrainingAlgorithm::kDpSgdR, 16_GiB);
        EXPECT_GT(sgd, 8 * dp) << net.name;
        // DP-SGD(R)'s advantage depends on the largest-layer share of
        // the model (paper: avg 3.8x memory reduction); it must always
        // admit a larger batch than vanilla DP-SGD.
        EXPECT_GT(dpr, dp) << net.name;
        EXPECT_GE(sgd, dpr) << net.name;
        EXPECT_GE(dp, 1) << net.name;
    }
}

TEST(MaxBatch, DpSgdSeverelyLimitedOnBigModels)
{
    // The paper reports mini-batches of 32 (ResNet-152) and 8
    // (BERT-base) for DP-SGD vs 8192/1024 for SGD. Our allocation
    // model reproduces the two-orders-of-magnitude collapse.
    const int r152_sgd =
        maxBatchSize(resnet152(), TrainingAlgorithm::kSgd, 16_GiB);
    const int r152_dp =
        maxBatchSize(resnet152(), TrainingAlgorithm::kDpSgd, 16_GiB);
    EXPECT_GT(r152_sgd, 1000);
    EXPECT_LT(r152_dp, 150);

    const int bert_sgd =
        maxBatchSize(bertBase(), TrainingAlgorithm::kSgd, 16_GiB);
    const int bert_dp =
        maxBatchSize(bertBase(), TrainingAlgorithm::kDpSgd, 16_GiB);
    EXPECT_GT(bert_sgd, 500);
    EXPECT_LT(bert_dp, 100);
}

TEST(MaxBatch, FitsWithinCapacity)
{
    for (const auto &net : allModels()) {
        for (auto algo :
             {TrainingAlgorithm::kSgd, TrainingAlgorithm::kDpSgd,
              TrainingAlgorithm::kDpSgdR}) {
            const int b = maxBatchSize(net, algo, 16_GiB);
            ASSERT_GE(b, 1) << net.name;
            EXPECT_LE(trainingMemory(net, algo, b).total(), 16_GiB)
                << net.name;
            EXPECT_GT(trainingMemory(net, algo, b + 1).total(), 16_GiB)
                << net.name;
        }
    }
}

TEST(MaxBatch, ZeroWhenModelTooLarge)
{
    // BERT-large's weights alone exceed a 1 GiB device under DP-SGD.
    EXPECT_EQ(maxBatchSize(bertLarge(), TrainingAlgorithm::kDpSgd,
                           1_GiB),
              0);
}

TEST(MaxBatch, GrowsWithCapacity)
{
    const Network net = resnet50();
    const int b16 = maxBatchSize(net, TrainingAlgorithm::kDpSgd, 16_GiB);
    const int b32 = maxBatchSize(net, TrainingAlgorithm::kDpSgd, 32_GiB);
    EXPECT_GT(b32, b16);
}

TEST(MemoryModel, CustomElementWidths)
{
    MemoryModelParams p;
    p.weightBytes = 2;
    p.activationBytes = 4;
    const MemoryBreakdown narrow =
        trainingMemory(resnet50(), TrainingAlgorithm::kDpSgd, 8, p);
    const MemoryBreakdown def =
        trainingMemory(resnet50(), TrainingAlgorithm::kDpSgd, 8);
    EXPECT_EQ(narrow.weights, def.weights / 2);
    EXPECT_EQ(narrow.activations, def.activations * 2);
}

} // namespace
} // namespace diva
