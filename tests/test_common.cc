/**
 * @file
 * Unit tests for common utilities: RNG determinism and statistics,
 * text-table formatting, ceil-division, logging macros.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "common/logging.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/types.h"

namespace diva
{
namespace
{

TEST(CeilDiv, ExactAndInexact)
{
    EXPECT_EQ(ceilDiv(0, 4), 0);
    EXPECT_EQ(ceilDiv(1, 4), 1);
    EXPECT_EQ(ceilDiv(4, 4), 1);
    EXPECT_EQ(ceilDiv(5, 4), 2);
    EXPECT_EQ(ceilDiv(8, 4), 2);
    EXPECT_EQ(ceilDiv<std::int64_t>(1'000'000'007, 128), 7812501);
}

TEST(ByteLiterals, Values)
{
    EXPECT_EQ(1_KiB, 1024u);
    EXPECT_EQ(1_MiB, 1024u * 1024u);
    EXPECT_EQ(16_MiB, 16u * 1024u * 1024u);
    EXPECT_EQ(16_GiB, 16ull * 1024 * 1024 * 1024);
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next()) ? 1 : 0;
    EXPECT_LT(same, 4);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespected)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformIntBounded)
{
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t v = rng.uniformInt(10);
        EXPECT_LT(v, 10u);
        seen.insert(v);
    }
    // All residues should appear over 1000 draws.
    EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformIntZeroIsZero)
{
    Rng rng(11);
    EXPECT_EQ(rng.uniformInt(0), 0u);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(42);
    const int n = 200000;
    double sum = 0.0, sum_sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sum_sq += g * g;
    }
    const double mean = sum / n;
    const double var = sum_sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.02);
    EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, GaussianScaleAndShift)
{
    Rng rng(43);
    const int n = 100000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += rng.gaussian(5.0, 2.0);
    EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, FillGaussianStddev)
{
    Rng rng(44);
    std::vector<float> v(100000);
    rng.fillGaussian(v, 3.0);
    double sum_sq = 0.0;
    for (float x : v)
        sum_sq += double(x) * double(x);
    EXPECT_NEAR(std::sqrt(sum_sq / double(v.size())), 3.0, 0.1);
}

TEST(Logging, PanicThrowsLogicError)
{
    EXPECT_THROW(DIVA_PANIC("boom ", 42), std::logic_error);
}

TEST(Logging, FatalThrowsRuntimeError)
{
    EXPECT_THROW(DIVA_FATAL("bad config ", 1.5), std::runtime_error);
}

TEST(Logging, AssertPassesOnTrue)
{
    EXPECT_NO_THROW(DIVA_ASSERT(1 + 1 == 2));
}

TEST(Logging, AssertThrowsOnFalse)
{
    EXPECT_THROW(DIVA_ASSERT(false, "context ", 7), std::logic_error);
}

TEST(TextTable, AlignsColumns)
{
    TextTable t({"a", "bb"});
    t.addRow({"xxxx", "y"});
    t.addRow({"z"});
    std::ostringstream oss;
    t.print(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("| xxxx | y  |"), std::string::npos);
    EXPECT_NE(out.find("| z    |    |"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(TextTable, SeparatorDoesNotCountAsRow)
{
    TextTable t({"a"});
    t.addRow({"1"});
    t.addSeparator();
    t.addRow({"2"});
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(TextTable, CsvOutput)
{
    TextTable t({"a", "b"});
    t.addRow({"1", "two, three"});
    t.addSeparator();
    t.addRow({"quo\"te", ""});
    std::ostringstream oss;
    t.printCsv(oss);
    EXPECT_EQ(oss.str(), "a,b\n1,\"two, three\"\n\"quo\"\"te\",\n");
}

TEST(TextTable, Formatters)
{
    EXPECT_EQ(TextTable::fmt(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::fmtX(2.5, 1), "2.5x");
    EXPECT_EQ(TextTable::fmtPct(0.421, 1), "42.1%");
}

} // namespace
} // namespace diva
