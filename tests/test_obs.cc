/**
 * @file
 * Tests of the observability layer: histogram bucketing and
 * percentile bounds against the exact nearest-rank implementation,
 * metrics-snapshot byte-identity across engine thread counts (the
 * registry's shard-merge determinism contract), trace span nesting
 * and per-track event caps, Chrome-trace JSON well-formedness, the
 * no-op guarantee (enabling collection does not perturb simulation
 * output), and stderr verbosity gating.
 */

#include <algorithm>
#include <cmath>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "arrivals/generate.h"
#include "common/logging.h"
#include "common/percentile.h"
#include "fleet/emit.h"
#include "fleet/engine.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"

namespace diva
{
namespace
{

/** Snapshot-as-JSON helper; the byte-identity tests compare these. */
std::string
metricsJson()
{
    std::ostringstream os;
    obs::MetricsRegistry::instance().snapshot().writeJson(os);
    return os.str();
}

/** RAII: enable the registry for one test, reset + disable after. */
struct ScopedMetrics
{
    ScopedMetrics()
    {
        obs::MetricsRegistry::instance().reset();
        obs::MetricsRegistry::instance().enable(true);
    }
    ~ScopedMetrics()
    {
        obs::MetricsRegistry::instance().enable(false);
        obs::MetricsRegistry::instance().reset();
    }
};

FleetSpec
smallFleet()
{
    std::string err;
    const auto diva_pods = parsePodTemplate("df=DiVa,count=2", &err);
    EXPECT_TRUE(diva_pods.has_value()) << err;
    const auto os_pods = parsePodTemplate("df=OS", &err);
    EXPECT_TRUE(os_pods.has_value()) << err;
    FleetSpec spec = buildFleet({*diva_pods, *os_pods});
    spec.placement = PlacementKind::kLoadAware;
    spec.rebalance.enabled = true;
    spec.controlIntervalSec = 0.5;
    return spec;
}

ArrivalTrace
smallTrace()
{
    std::string err;
    const auto gen = parseTraceGenSpec(
        "diurnal:rate=18,horizon=4,seed=11,qos=3,hold=3,cap=120", &err);
    EXPECT_TRUE(gen.has_value()) << err;
    return generateTrace(*gen);
}

TEST(ObsHistogram, BucketBoundsCoverPositiveValues)
{
    // Every positive sample must land in a bucket whose upper bound
    // is >= the sample and within 25% of it (4 sub-buckets per
    // power-of-two octave).
    for (double v : {1e-9, 0.001, 0.5, 0.75, 1.0, 1.5, 3.0, 7.99,
                     1024.0, 3.7e8}) {
        const int idx = obs::MetricsRegistry::bucketIndex(v);
        const double le = obs::MetricsRegistry::bucketUpperBound(idx);
        EXPECT_GE(le, v) << "v=" << v;
        EXPECT_LE(le, v * 1.25 + 1e-12) << "v=" << v;
        // The next-lower bucket's bound is below v (equal when v sits
        // exactly on a sub-bucket boundary, which maps upward).
        EXPECT_LE(obs::MetricsRegistry::bucketUpperBound(idx - 1), v)
            << "v=" << v;
    }
}

TEST(ObsHistogram, NonPositiveValuesShareTheUnderflowBucket)
{
    const int zero = obs::MetricsRegistry::bucketIndex(0.0);
    EXPECT_EQ(zero, obs::MetricsRegistry::bucketIndex(-1.0));
    EXPECT_EQ(zero, obs::MetricsRegistry::bucketIndex(-1e300));
    EXPECT_NE(zero, obs::MetricsRegistry::bucketIndex(1e-300));
}

TEST(ObsHistogram, PercentilesTrackExactNearestRank)
{
    ScopedMetrics scoped;
    auto &reg = obs::MetricsRegistry::instance();

    // A skewed latency-like sample set: many fast, few slow.
    std::vector<double> samples;
    for (int i = 1; i <= 200; ++i)
        samples.push_back(0.001 * double(i % 17 + 1));
    for (int i = 0; i < 10; ++i)
        samples.push_back(0.5 + 0.1 * double(i));
    for (double v : samples)
        reg.recordValue("test.latency", v);
    std::sort(samples.begin(), samples.end());

    const auto snap = reg.snapshot();
    const auto it = snap.histograms.find("test.latency");
    ASSERT_NE(it, snap.histograms.end());
    const obs::HistogramSnapshot &h = it->second;
    EXPECT_EQ(h.count, samples.size());
    EXPECT_DOUBLE_EQ(h.min, samples.front());
    EXPECT_DOUBLE_EQ(h.max, samples.back());

    // The bucketed estimate is the upper bound of the bucket holding
    // the nearest-rank sample, so it is >= the exact value and within
    // the 25% relative bucket width (clamping to max can only bring
    // it closer).
    for (double p : {10.0, 50.0, 90.0, 95.0, 99.0, 100.0}) {
        const double exact = percentileSorted(samples, p);
        const double est = h.percentile(p);
        EXPECT_GE(est, exact) << "p" << p;
        EXPECT_LE(est, exact * 1.25 + 1e-12) << "p" << p;
    }
}

TEST(ObsMetrics, CountersMergeAcrossShortLivedThreads)
{
    ScopedMetrics scoped;
    auto &reg = obs::MetricsRegistry::instance();

    // Fleet epochs spawn short-lived worker threads; their shards
    // must survive thread exit and merge into the snapshot.
    std::vector<std::thread> workers;
    for (int t = 0; t < 4; ++t)
        workers.emplace_back([&reg] {
            for (int i = 0; i < 1000; ++i)
                reg.addCounter("test.work");
        });
    for (std::thread &w : workers)
        w.join();
    reg.addCounter("test.work", 5);

    const auto snap = reg.snapshot();
    ASSERT_EQ(snap.counters.count("test.work"), 1u);
    EXPECT_EQ(snap.counters.at("test.work"), 4005u);
}

TEST(ObsMetrics, SnapshotIsByteIdenticalAcrossEngineThreadCounts)
{
    const FleetSpec spec = smallFleet();
    const ArrivalTrace trace = smallTrace();

    auto runAt = [&](int threads) {
        ScopedMetrics scoped;
        SweepOptions opts;
        opts.threads = 2;
        SweepRunner runner(opts);
        const FleetResult r = simulateFleet(spec, trace, runner, threads);
        EXPECT_TRUE(r.ok()) << r.error;
        return metricsJson();
    };

    const std::string one = runAt(1);
    const std::string four = runAt(4);
    EXPECT_FALSE(one.empty());
    EXPECT_TRUE(one == four)
        << "metrics snapshot diverged across engine thread counts";
    // The snapshot carries the headline fleet counters.
    EXPECT_NE(one.find("\"fleet.placed\""), std::string::npos);
    EXPECT_NE(one.find("\"serve_core.steps\""), std::string::npos);
    EXPECT_NE(one.find("\"fleet.step_latency_sec\""), std::string::npos);
}

TEST(ObsMetrics, DisabledRegistryRecordsNothing)
{
    auto &reg = obs::MetricsRegistry::instance();
    reg.reset();
    ASSERT_FALSE(reg.enabled());
    reg.addCounter("test.ignored");
    reg.recordValue("test.ignored_h", 1.0);
    reg.setGauge("test.ignored_g", 1.0);
    const auto snap = reg.snapshot();
    EXPECT_TRUE(snap.counters.empty());
    EXPECT_TRUE(snap.histograms.empty());
    EXPECT_TRUE(snap.gauges.empty());
}

TEST(ObsNoOp, EnablingCollectionDoesNotPerturbFleetOutput)
{
    const FleetSpec spec = smallFleet();
    const ArrivalTrace trace = smallTrace();

    auto emitAll = [](const FleetResult &r) {
        std::ostringstream os;
        writeFleetTenantCsv(os, r);
        writeFleetPodCsv(os, r);
        writeFleetJson(os, r, true);
        return os.str();
    };

    SweepRunner off_runner;
    const FleetResult off = simulateFleet(spec, trace, off_runner, 2);
    ASSERT_TRUE(off.ok()) << off.error;

    std::string with_obs;
    {
        ScopedMetrics scoped;
        obs::TraceSink sink;
        SweepRunner on_runner;
        const FleetResult on =
            simulateFleet(spec, trace, on_runner, 2, &sink);
        EXPECT_TRUE(on.ok()) << on.error;
        with_obs = emitAll(on);
    }
    EXPECT_TRUE(emitAll(off) == with_obs)
        << "collection perturbed the simulation output";
}

TEST(ObsTrace, SpansNestPerTrackAndJsonIsWellFormed)
{
    obs::TraceSink sink;
    const FleetSpec spec = smallFleet();
    const ArrivalTrace trace = smallTrace();
    SweepRunner runner;
    const FleetResult r = simulateFleet(spec, trace, runner, 2, &sink);
    ASSERT_TRUE(r.ok()) << r.error;

    std::ostringstream os;
    sink.write(os);
    const std::string json = os.str();
    ASSERT_FALSE(json.empty());
    EXPECT_EQ(json.rfind("{\n\"traceEvents\": [", 0), 0u) << json.substr(0, 40);
    EXPECT_NE(json.find("\"droppedEvents\": 0"), std::string::npos);
    // Balanced braces/brackets (events carry no nested strings with
    // braces beyond the escaped names, so a raw count is a fair
    // well-formedness smoke check).
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '['),
              std::count(json.begin(), json.end(), ']'));

    // Per track: 'X' spans, visited in append order, must nest -- a
    // span either starts at/after the end of every still-open span
    // above it or lies entirely inside it. The fleet emits disjoint
    // sequential step spans per pod and tiling budget-epoch spans on
    // the control track, so this holds by construction.
    bool saw_span = false;
    for (int tid = 0; tid < int(spec.pods.size()) + 1; ++tid) {
        const obs::TraceTrack *track = sink.track(tid, "probe");
        ASSERT_NE(track, nullptr);
        std::vector<double> open_ends;
        for (const obs::TraceEvent &ev : track->events()) {
            if (ev.ph != 'X')
                continue;
            saw_span = true;
            const double t0 = ev.tsSec;
            const double t1 = ev.tsSec + ev.durSec;
            EXPECT_GE(ev.durSec, 0.0) << track->name();
            while (!open_ends.empty() &&
                   t0 >= open_ends.back() - 1e-12)
                open_ends.pop_back();
            if (!open_ends.empty())
                EXPECT_LE(t1, open_ends.back() + 1e-9)
                    << "span overlaps an open span on " << track->name();
            open_ends.push_back(t1);
        }
    }
    EXPECT_TRUE(saw_span) << "fleet run emitted no spans";
}

TEST(ObsTrace, PerTrackCapDropsAndCounts)
{
    obs::TraceSink sink(2);
    obs::TraceTrack *t = sink.track(0, "tiny");
    t->instant(0.0, "a", "test");
    t->instant(1.0, "b", "test");
    t->instant(2.0, "c", "test");
    t->instant(3.0, "d", "test");
    EXPECT_EQ(t->events().size(), 2u);
    EXPECT_EQ(t->dropped(), 2u);
    EXPECT_EQ(sink.dropped(), 2u);

    std::ostringstream os;
    sink.write(os);
    EXPECT_NE(os.str().find("\"droppedEvents\": 2"), std::string::npos);
}

TEST(ObsProfile, ScopedPhaseAccumulatesOnlyWhenEnabled)
{
    auto &prof = obs::Profiler::instance();
    prof.reset();
    {
        obs::ScopedPhase off("test_phase_off");
    }
    EXPECT_TRUE(prof.phases().empty());

    prof.enable(true);
    {
        obs::ScopedPhase on("test_phase_on");
    }
    {
        obs::ScopedPhase on("test_phase_on");
    }
    prof.enable(false);
    const auto phases = prof.phases();
    ASSERT_EQ(phases.count("test_phase_on"), 1u);
    EXPECT_EQ(phases.at("test_phase_on").calls, 2u);
    EXPECT_GE(phases.at("test_phase_on").seconds, 0.0);
    prof.reset();
}

TEST(ObsLogging, VerbosityGatesInformAndVerbose)
{
    // kQuiet drops warn/inform; kNormal drops verbose; kVerbose
    // prints everything.
    setLogVerbosity(LogVerbosity::kQuiet);
    testing::internal::CaptureStderr();
    DIVA_WARN("quiet-warn");
    DIVA_INFORM("quiet-inform");
    DIVA_VERBOSE("quiet-verbose");
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "");

    setLogVerbosity(LogVerbosity::kNormal);
    testing::internal::CaptureStderr();
    DIVA_WARN("normal-warn");
    DIVA_VERBOSE("normal-verbose");
    std::string err = testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("normal-warn"), std::string::npos);
    EXPECT_EQ(err.find("normal-verbose"), std::string::npos);

    setLogVerbosity(LogVerbosity::kVerbose);
    testing::internal::CaptureStderr();
    DIVA_VERBOSE("verbose-note");
    err = testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("verbose-note"), std::string::npos);
    setLogVerbosity(LogVerbosity::kNormal);
}

} // namespace
} // namespace diva
