/**
 * @file
 * Tests for the roofline GPU model used in the Figure-17 comparison.
 */

#include <gtest/gtest.h>

#include "gpu/gpu_model.h"
#include "models/zoo.h"
#include "train/planner.h"

namespace diva
{
namespace
{

TEST(GpuConfig, PresetsMatchSectionVID)
{
    EXPECT_DOUBLE_EQ(GpuConfig::v100Fp32().peakTflops, 15.7);
    EXPECT_DOUBLE_EQ(GpuConfig::v100Fp16().peakTflops, 125.0);
    EXPECT_DOUBLE_EQ(GpuConfig::a100Fp32().peakTflops, 19.5);
    EXPECT_DOUBLE_EQ(GpuConfig::a100Fp16().peakTflops, 312.0);
    EXPECT_DOUBLE_EQ(GpuConfig::v100Fp32().bandwidthGBs, 900.0);
    EXPECT_DOUBLE_EQ(GpuConfig::a100Fp32().bandwidthGBs, 1555.0);
}

TEST(GpuModel, EmptyBatchIsFree)
{
    const GpuModel gpu(GpuConfig::v100Fp16());
    EXPECT_DOUBLE_EQ(gpu.batchedGemm(GemmShape(8, 8, 8), 0).seconds,
                     0.0);
}

TEST(GpuModel, LargeGemmNearRoofline)
{
    const GpuConfig cfg = GpuConfig::a100Fp16();
    const GpuModel gpu(cfg);
    const GemmShape s(8192, 8192, 8192);
    const GpuOpResult r = gpu.batchedGemm(s, 1);
    const double ideal = s.flops() / (cfg.peakTflops * 1e12);
    EXPECT_GT(r.seconds, ideal);
    EXPECT_LT(r.seconds, 2.0 * ideal);
}

TEST(GpuModel, TensorCoreKPaddingHurtsTinyK)
{
    // K=1 pads to the MMA granule on Tensor Cores, wasting compute.
    const GpuModel tc(GpuConfig::a100Fp16());
    const GemmShape k1(1024, 1, 1024);
    const GemmShape k16(1024, 16, 1024);
    const GpuOpResult r1 = tc.batchedGemm(k1, 64);
    const GpuOpResult r16 = tc.batchedGemm(k16, 64);
    // 16x the useful work for (nearly) the same time.
    EXPECT_LT(r16.computeSeconds, 1.05 * r1.computeSeconds);
}

TEST(GpuModel, BatchingFillsWaves)
{
    // 64 tiny GEMMs batched should cost far less than 64x one GEMM.
    const GpuModel gpu(GpuConfig::v100Fp16());
    const GemmShape s(64, 32, 64);
    const double batched = gpu.batchedGemm(s, 64).seconds;
    const double serial = 64.0 * gpu.batchedGemm(s, 1).seconds;
    EXPECT_LT(batched, 0.25 * serial);
}

TEST(GpuModel, MemoryBoundForLowIntensity)
{
    const GpuModel gpu(GpuConfig::a100Fp16());
    // K=1 with huge M,N: output writes dominate.
    const GpuOpResult r = gpu.batchedGemm(GemmShape(8192, 1, 8192), 8);
    EXPECT_GT(r.memorySeconds, r.computeSeconds);
    EXPECT_DOUBLE_EQ(r.seconds, r.memorySeconds);
}

TEST(GpuModel, A100FasterThanV100)
{
    const GpuModel v100(GpuConfig::v100Fp16());
    const GpuModel a100(GpuConfig::a100Fp16());
    const GemmShape s(4096, 4096, 4096);
    EXPECT_LT(a100.batchedGemm(s, 1).seconds,
              v100.batchedGemm(s, 1).seconds);
}

TEST(GpuModel, TensorCoresFasterThanCudaCoresOnBigGemm)
{
    const GpuModel fp32(GpuConfig::v100Fp32());
    const GpuModel fp16(GpuConfig::v100Fp16());
    const GemmShape s(4096, 4096, 4096);
    EXPECT_LT(fp16.batchedGemm(s, 1).seconds,
              fp32.batchedGemm(s, 1).seconds);
}

TEST(GpuModel, BottleneckSecondsPositiveAndOrdered)
{
    const OpStream stream =
        buildOpStream(resnet50(), TrainingAlgorithm::kDpSgdR, 32);
    const double v100 =
        GpuModel(GpuConfig::v100Fp16()).bottleneckSeconds(stream);
    const double a100 =
        GpuModel(GpuConfig::a100Fp16()).bottleneckSeconds(stream);
    EXPECT_GT(v100, 0.0);
    EXPECT_GT(a100, 0.0);
    EXPECT_LT(a100, v100);
}

TEST(GpuModel, BottleneckExcludesForward)
{
    // Figure 17 compares backprop bottleneck GEMMs only.
    OpStream fwd_only;
    fwd_only.algorithm = TrainingAlgorithm::kSgd;
    fwd_only.batch = 1;
    Op op;
    op.type = OpType::kGemm;
    op.stage = Stage::kForward;
    op.shape = GemmShape(1024, 1024, 1024);
    fwd_only.ops.push_back(op);
    EXPECT_DOUBLE_EQ(
        GpuModel(GpuConfig::v100Fp16()).bottleneckSeconds(fwd_only),
        0.0);
}

TEST(GpuModel, RejectsInvalidShape)
{
    const GpuModel gpu(GpuConfig::v100Fp32());
    EXPECT_THROW(gpu.batchedGemm(GemmShape(0, 1, 1), 1),
                 std::logic_error);
}

} // namespace
} // namespace diva
