/**
 * @file
 * Unit tests for the PPU: adder-tree functional/cycle models, PPU
 * timing, and the vector-unit fallback.
 */

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "arch/accelerator_config.h"
#include "common/rng.h"
#include "ppu/adder_tree.h"
#include "ppu/ppu_model.h"
#include "ppu/vector_unit.h"

namespace diva
{
namespace
{

TEST(AdderTree, WidthRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(AdderTree(1).width(), 1);
    EXPECT_EQ(AdderTree(2).width(), 2);
    EXPECT_EQ(AdderTree(3).width(), 4);
    EXPECT_EQ(AdderTree(100).width(), 128);
    EXPECT_EQ(AdderTree(128).width(), 128);
}

TEST(AdderTree, LevelsAreLog2Width)
{
    // The paper's Figure 11: 7 levels for a 128-wide tree.
    EXPECT_EQ(AdderTree(128).levels(), 7);
    EXPECT_EQ(AdderTree(8).levels(), 3);
    EXPECT_EQ(AdderTree(1).levels(), 0);
}

TEST(AdderTree, NumAdders)
{
    EXPECT_EQ(AdderTree(128).numAdders(), 127);
    EXPECT_EQ(AdderTree(8).numAdders(), 7);
}

TEST(AdderTree, ReducesExactSum)
{
    const AdderTree tree(8);
    const std::vector<float> v = {1, 2, 3, 4, 5, 6, 7, 8};
    EXPECT_DOUBLE_EQ(tree.reduce(v), 36.0);
}

TEST(AdderTree, HandlesNonMultipleLengths)
{
    const AdderTree tree(8);
    std::vector<float> v(13, 1.0f);
    EXPECT_DOUBLE_EQ(tree.reduce(v), 13.0);
}

TEST(AdderTree, EmptyVectorIsZero)
{
    EXPECT_DOUBLE_EQ(AdderTree(128).reduce({}), 0.0);
}

TEST(AdderTree, MatchesSequentialSumOnRandomData)
{
    const AdderTree tree(128);
    Rng rng(5);
    std::vector<float> v(1000);
    for (auto &x : v)
        x = float(rng.uniform(-1.0, 1.0));
    const double seq = std::accumulate(v.begin(), v.end(), 0.0);
    EXPECT_NEAR(tree.reduce(v), seq, 1e-6);
}

TEST(AdderTree, PipelinedCycleModel)
{
    const AdderTree tree(128);
    EXPECT_EQ(tree.reduceCycles(0), 0u);
    // One vector: pipeline depth + 1.
    EXPECT_EQ(tree.reduceCycles(1), 8u);
    // Pipelined: one vector per cycle thereafter.
    EXPECT_EQ(tree.reduceCycles(100), 107u);
}

TEST(PpuModel, RequiresPpuConfig)
{
    EXPECT_THROW(PpuModel(divaDefault(false)), std::logic_error);
}

TEST(PpuModel, DefaultGeometryMatchesPaper)
{
    const PpuModel ppu(divaDefault(true));
    // R=8 trees of width 128 -> 1024 elements per cycle.
    EXPECT_EQ(ppu.numTrees(), 8);
    EXPECT_EQ(ppu.tree().levels(), 7);
    EXPECT_EQ(ppu.elemsPerCycle(), 1024u);
}

TEST(PpuModel, NormOnDrainHasNoDramTraffic)
{
    const PpuModel ppu(divaDefault(true));
    const PostProcResult r = ppu.normOnDrain(100'000'000);
    EXPECT_EQ(r.dramReadBytes, 0u);
    EXPECT_EQ(r.dramWriteBytes, 0u);
    // Only the pipeline depth is exposed, regardless of tensor size.
    EXPECT_LT(r.cycles, 32u);
}

TEST(PpuModel, NormOnDrainExposedCostConstant)
{
    const PpuModel ppu(divaDefault(true));
    EXPECT_EQ(ppu.normOnDrain(1).cycles, ppu.normOnDrain(1 << 30).cycles);
}

TEST(PpuModel, ReduceOnChipThroughput)
{
    const PpuModel ppu(divaDefault(true));
    const PostProcResult r = ppu.reduceOnChip(1024 * 100);
    EXPECT_EQ(r.cycles, 100u + 7u);
}

TEST(PpuModel, ThroughputMatchesPaperDrainRate)
{
    // Section IV-C: 940 MHz x 8 rows x 128 elems x 4B = 3.85 TB/s.
    const AcceleratorConfig cfg = divaDefault(true);
    const PpuModel ppu(cfg);
    const double bytes_per_sec = double(ppu.elemsPerCycle()) * 4.0 *
                                 cfg.freqGhz * 1e9;
    EXPECT_NEAR(bytes_per_sec / 1e12, 3.85, 0.01);
}

TEST(VectorUnit, ElementwiseThroughput)
{
    const VectorUnitModel vu(tpuV3Ws());
    EXPECT_EQ(vu.elementwiseCycles(1024), 1u);
    EXPECT_EQ(vu.elementwiseCycles(1025), 2u);
    EXPECT_EQ(vu.elementwiseCycles(0), 0u);
}

TEST(VectorUnit, ReductionSlowerThanElementwise)
{
    const VectorUnitModel vu(tpuV3Ws());
    EXPECT_GT(vu.reductionCycles(1 << 20),
              vu.elementwiseCycles(1 << 20));
}

TEST(VectorUnit, NoiseIsExpensive)
{
    const VectorUnitModel vu(tpuV3Ws());
    EXPECT_GT(vu.noiseCycles(1 << 20), vu.reductionCycles(1 << 20));
}

TEST(VectorUnit, PpuReductionBeatsVectorUnit)
{
    // The dedicated adder trees outperform permute-based vector
    // reductions (Section IV-C).
    const AcceleratorConfig cfg = divaDefault(true);
    const PpuModel ppu(cfg);
    const VectorUnitModel vu(cfg);
    const Elems e = 1 << 24;
    EXPECT_LT(ppu.reduceOnChip(e).cycles, vu.reductionCycles(e));
}

} // namespace
} // namespace diva
