/**
 * @file
 * Tests for the time-series linear layer: Figure-6 third-row algebra,
 * the Gram-matrix ghost-norm identity, and consistency with a plain
 * Linear layer at L = 1.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "dp/linear.h"
#include "dp/seq_linear.h"
#include "models/layer.h"

namespace diva
{
namespace
{

TEST(SeqLinear, ForwardShape)
{
    Rng rng(1);
    const SeqLinear layer(6, 4, 5, rng);
    const Tensor x = Tensor::randn(3, 5 * 6, rng, 1.0);
    const Tensor y = layer.forward(x);
    EXPECT_EQ(y.rows(), 3);
    EXPECT_EQ(y.cols(), 5 * 4);
}

TEST(SeqLinear, SharesWeightsAcrossTimesteps)
{
    Rng rng(2);
    const SeqLinear layer(4, 3, 2, rng);
    // The same input at both timesteps must give the same output.
    Tensor x(1, 8);
    Rng data(3);
    for (int f = 0; f < 4; ++f) {
        const float v = float(data.uniform(-1, 1));
        x.at(0, f) = v;
        x.at(0, 4 + f) = v;
    }
    const Tensor y = layer.forward(x);
    for (int o = 0; o < 3; ++o)
        EXPECT_FLOAT_EQ(y.at(0, o), y.at(0, 3 + o));
}

TEST(SeqLinear, LengthOneMatchesLinear)
{
    Rng rng_a(4), rng_b(4);
    SeqLinear seq(5, 3, 1, rng_a);
    Linear lin(5, 3, rng_b);
    // Same init stream -> same weights.
    ASSERT_LT(seq.weight().maxAbsDiff(lin.weight()), 1e-9);

    Rng data(5);
    const Tensor x = Tensor::randn(4, 5, data, 1.0);
    const Tensor gy = Tensor::randn(4, 3, data, 1.0);
    EXPECT_LT(seq.forward(x).maxAbsDiff(lin.forward(x)), 1e-5);
    EXPECT_LT(seq.backwardInput(gy).maxAbsDiff(lin.backwardInput(gy)),
              1e-5);
    Tensor dw_s, db_s, dw_l, db_l;
    seq.perBatchGrad(x, gy, dw_s, db_s);
    lin.perBatchGrad(x, gy, dw_l, db_l);
    EXPECT_LT(dw_s.maxAbsDiff(dw_l), 1e-4);
    EXPECT_LT(db_s.maxAbsDiff(db_l), 1e-5);
}

TEST(SeqLinear, PerBatchEqualsSumOfPerExample)
{
    Rng rng(6);
    const SeqLinear layer(6, 4, 3, rng);
    const Tensor x = Tensor::randn(5, 3 * 6, rng, 1.0);
    const Tensor gy = Tensor::randn(5, 3 * 4, rng, 1.0);
    Tensor dw_b, db_b;
    layer.perBatchGrad(x, gy, dw_b, db_b);
    Tensor dw_sum(6, 4), db_sum(1, 4), dw_i, db_i;
    for (std::int64_t i = 0; i < 5; ++i) {
        layer.perExampleGrad(x, gy, i, dw_i, db_i);
        dw_sum.add(dw_i);
        db_sum.add(db_i);
    }
    EXPECT_LT(dw_b.maxAbsDiff(dw_sum), 1e-4);
    EXPECT_LT(db_b.maxAbsDiff(db_sum), 1e-4);
}

TEST(SeqLinear, GhostNormMatchesMaterializedNorm)
{
    // The Gram-matrix identity must agree with the materialized
    // gradient norm for every example.
    Rng rng(7);
    const SeqLinear layer(8, 5, 6, rng);
    const Tensor x = Tensor::randn(4, 6 * 8, rng, 1.0);
    const Tensor gy = Tensor::randn(4, 6 * 5, rng, 1.0);
    Tensor dw, db;
    for (std::int64_t i = 0; i < 4; ++i) {
        layer.perExampleGrad(x, gy, i, dw, db);
        const double materialized = dw.l2NormSq() + db.l2NormSq();
        EXPECT_NEAR(layer.perExampleGradNormSq(x, gy, i), materialized,
                    1e-4 * std::max(1.0, materialized))
            << "example " << i;
    }
}

TEST(SeqLinear, GhostNormHasCrossTimestepTerms)
{
    // With L > 1 the norm is NOT the sum of per-timestep norms: the
    // cross terms (x_t.x_s)(g_t.g_s) matter. Construct a case where
    // both timesteps carry identical (x, g): the true squared norm is
    // 4x the single-step one, not 2x.
    Rng rng(8);
    SeqLinear layer(3, 2, 2, rng);
    Tensor x(1, 6), gy(1, 4);
    for (int f = 0; f < 3; ++f)
        x.at(0, f) = x.at(0, 3 + f) = float(f + 1);
    for (int o = 0; o < 2; ++o)
        gy.at(0, o) = gy.at(0, 2 + o) = float(o + 1);
    SeqLinear single(3, 2, 1, rng);
    Tensor x1(1, 3), g1(1, 2);
    for (int f = 0; f < 3; ++f)
        x1.at(0, f) = float(f + 1);
    for (int o = 0; o < 2; ++o)
        g1.at(0, o) = float(o + 1);
    const double one = single.perExampleGradNormSq(x1, g1, 0);
    const double two = layer.perExampleGradNormSq(x, gy, 0);
    EXPECT_NEAR(two, 4.0 * one, 1e-6 * std::max(1.0, one));
}

TEST(SeqLinear, InputGradMatchesFiniteDifferences)
{
    Rng rng(9);
    const SeqLinear layer(4, 3, 2, rng);
    Tensor x = Tensor::randn(1, 2 * 4, rng, 1.0);
    const Tensor gy = Tensor::randn(1, 2 * 3, rng, 1.0);
    const Tensor gx = layer.backwardInput(gy);

    auto loss = [&]() {
        const Tensor y = layer.forward(x);
        double acc = 0.0;
        for (std::int64_t i = 0; i < y.size(); ++i)
            acc += double(y[i]) * double(gy[i]);
        return acc;
    };
    const double eps = 1e-3;
    for (std::int64_t idx = 0; idx < x.size(); ++idx) {
        const float orig = x[idx];
        x[idx] = float(orig + eps);
        const double fp = loss();
        x[idx] = float(orig - eps);
        const double fm = loss();
        x[idx] = orig;
        EXPECT_NEAR(gx[idx], (fp - fm) / (2 * eps), 1e-2);
    }
}

TEST(SeqLinear, ShapeMatchesFigure6ThirdRow)
{
    // dW_i dims must equal the analytic (I, L, O) GEMM output dims.
    const Layer analytic =
        Layer::timeSeriesLinear("proj", 16, 12, 10);
    const GemmInstance gi = analytic.perExampleWGradGemm(4);
    ASSERT_EQ(gi.shape, GemmShape(16, 10, 12));

    Rng rng(10);
    const SeqLinear layer(16, 12, 10, rng);
    const Tensor x = Tensor::randn(4, 10 * 16, rng, 1.0);
    const Tensor gy = Tensor::randn(4, 10 * 12, rng, 1.0);
    Tensor dw, db;
    layer.perExampleGrad(x, gy, 2, dw, db);
    EXPECT_EQ(dw.rows(), gi.shape.m);
    EXPECT_EQ(dw.cols(), gi.shape.n);
}

} // namespace
} // namespace diva
