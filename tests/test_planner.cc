/**
 * @file
 * Tests for the training planner: per-algorithm op-stream structure,
 * stage assignment, and work-conservation properties.
 */

#include <gtest/gtest.h>

#include <map>

#include "models/zoo.h"
#include "train/planner.h"

namespace diva
{
namespace
{

std::map<Stage, int>
opsPerStage(const OpStream &s)
{
    std::map<Stage, int> counts;
    for (const auto &op : s.ops)
        counts[op.stage]++;
    return counts;
}

std::map<OpType, int>
opsPerType(const OpStream &s)
{
    std::map<OpType, int> counts;
    for (const auto &op : s.ops)
        counts[op.type]++;
    return counts;
}

TEST(Planner, SgdStages)
{
    const Network net = resnet50();
    const OpStream s = buildOpStream(net, TrainingAlgorithm::kSgd, 32);
    const auto stages = opsPerStage(s);
    EXPECT_GT(stages.at(Stage::kForward), 0);
    EXPECT_GT(stages.at(Stage::kActGrad1), 0);
    EXPECT_GT(stages.at(Stage::kPerBatchGrad), 0);
    EXPECT_EQ(stages.count(Stage::kPerExampleGrad), 0u);
    EXPECT_EQ(stages.count(Stage::kGradNorm), 0u);
    EXPECT_EQ(stages.count(Stage::kGradClip), 0u);
    EXPECT_EQ(stages.count(Stage::kReduceNoise), 0u);
    EXPECT_EQ(stages.count(Stage::kActGrad2), 0u);
}

TEST(Planner, DpSgdStages)
{
    const Network net = resnet50();
    const OpStream s = buildOpStream(net, TrainingAlgorithm::kDpSgd, 32);
    const auto stages = opsPerStage(s);
    EXPECT_GT(stages.at(Stage::kForward), 0);
    EXPECT_GT(stages.at(Stage::kActGrad1), 0);
    EXPECT_GT(stages.at(Stage::kPerExampleGrad), 0);
    EXPECT_GT(stages.at(Stage::kGradNorm), 0);
    EXPECT_GT(stages.at(Stage::kGradClip), 0);
    EXPECT_GT(stages.at(Stage::kReduceNoise), 0);
    // Vanilla DP-SGD has no second backprop and no per-batch wgrads.
    EXPECT_EQ(stages.count(Stage::kActGrad2), 0u);
    EXPECT_EQ(stages.count(Stage::kPerBatchGrad), 0u);
}

TEST(Planner, DpSgdRStages)
{
    const Network net = resnet50();
    const OpStream s =
        buildOpStream(net, TrainingAlgorithm::kDpSgdR, 32);
    const auto stages = opsPerStage(s);
    EXPECT_GT(stages.at(Stage::kForward), 0);
    EXPECT_GT(stages.at(Stage::kActGrad1), 0);
    EXPECT_GT(stages.at(Stage::kPerExampleGrad), 0);
    EXPECT_GT(stages.at(Stage::kGradNorm), 0);
    // The reweighted second backprop.
    EXPECT_GT(stages.at(Stage::kActGrad2), 0);
    EXPECT_GT(stages.at(Stage::kPerBatchGrad), 0);
    // Clip/reduce are fused into the 2nd pass; only noise remains.
    EXPECT_EQ(stages.count(Stage::kGradClip), 0u);
    EXPECT_EQ(stages.at(Stage::kReduceNoise), 1);
}

TEST(Planner, DpSgdPostProcOpTypes)
{
    const Network net = vgg16();
    const OpStream s = buildOpStream(net, TrainingAlgorithm::kDpSgd, 16);
    const auto types = opsPerType(s);
    EXPECT_EQ(types.at(OpType::kGradNorm), net.numWeightedLayers());
    EXPECT_EQ(types.at(OpType::kGradClip), 1);
    EXPECT_EQ(types.at(OpType::kGradReduce), 1);
    EXPECT_EQ(types.at(OpType::kNoiseAdd), 1);
}

TEST(Planner, BothBackpropPassesIdentical)
{
    // DP-SGD(R)'s two activation-gradient passes perform equal work.
    const OpStream s =
        buildOpStream(resnet50(), TrainingAlgorithm::kDpSgdR, 32);
    Macs pass1 = 0, pass2 = 0;
    for (const auto &op : s.ops) {
        if (op.stage == Stage::kActGrad1)
            pass1 += op.gemmMacs();
        if (op.stage == Stage::kActGrad2)
            pass2 += op.gemmMacs();
    }
    EXPECT_GT(pass1, 0u);
    EXPECT_EQ(pass1, pass2);
}

TEST(Planner, PerExampleAndPerBatchWGradMacsMatch)
{
    // The two weight-gradient derivations do the same useful work.
    const Network net = vgg16();
    const OpStream dp =
        buildOpStream(net, TrainingAlgorithm::kDpSgd, 64);
    const OpStream sgd =
        buildOpStream(net, TrainingAlgorithm::kSgd, 64);
    Macs per_example = 0, per_batch = 0;
    for (const auto &op : dp.ops)
        if (op.stage == Stage::kPerExampleGrad)
            per_example += op.gemmMacs();
    for (const auto &op : sgd.ops)
        if (op.stage == Stage::kPerBatchGrad)
            per_batch += op.gemmMacs();
    EXPECT_EQ(per_example, per_batch);
}

TEST(Planner, PerExampleOutputFlagOnlyOnPerExampleGemms)
{
    const OpStream s =
        buildOpStream(bertBase(), TrainingAlgorithm::kDpSgdR, 8);
    for (const auto &op : s.ops) {
        if (op.perExampleOutput) {
            EXPECT_EQ(op.type, OpType::kGemm);
            EXPECT_EQ(op.stage, Stage::kPerExampleGrad);
        } else if (op.type == OpType::kGemm) {
            EXPECT_NE(op.stage, Stage::kPerExampleGrad);
        }
    }
}

TEST(Planner, NormElemsCoverAllWeights)
{
    const Network net = bertBase();
    const int batch = 8;
    const OpStream s =
        buildOpStream(net, TrainingAlgorithm::kDpSgdR, batch);
    Elems norm_elems = 0;
    for (const auto &op : s.ops)
        if (op.type == OpType::kGradNorm)
            norm_elems += op.inElems;
    EXPECT_EQ(norm_elems, Elems(batch) * Elems(net.paramCount()));
}

TEST(Planner, FirstLayerSkipsActGrad)
{
    // Nothing upstream consumes the first layer's input gradient.
    const Network net = vgg16();
    const OpStream s = buildOpStream(net, TrainingAlgorithm::kSgd, 8);
    const std::string first = net.layers.front().name;
    for (const auto &op : s.ops) {
        if (op.stage == Stage::kActGrad1) {
            EXPECT_NE(op.layerName, first);
        }
    }
}

TEST(Planner, ForwardMacsIdenticalAcrossAlgorithms)
{
    const Network net = resnet50();
    Macs fwd[3];
    int i = 0;
    for (auto algo :
         {TrainingAlgorithm::kSgd, TrainingAlgorithm::kDpSgd,
          TrainingAlgorithm::kDpSgdR}) {
        const OpStream s = buildOpStream(net, algo, 32);
        Macs m = 0;
        for (const auto &op : s.ops)
            if (op.stage == Stage::kForward)
                m += op.gemmMacs();
        fwd[i++] = m;
    }
    EXPECT_EQ(fwd[0], fwd[1]);
    EXPECT_EQ(fwd[1], fwd[2]);
}

TEST(Planner, RejectsInvalidBatch)
{
    EXPECT_THROW(buildOpStream(vgg16(), TrainingAlgorithm::kSgd, 0),
                 std::logic_error);
}

TEST(Planner, RejectsEmptyNetwork)
{
    Network empty;
    empty.name = "empty";
    EXPECT_THROW(buildOpStream(empty, TrainingAlgorithm::kSgd, 1),
                 std::logic_error);
}

/** Sweep all nine models x three algorithms for structural sanity. */
class PlannerSweep
    : public ::testing::TestWithParam<std::tuple<int, TrainingAlgorithm>>
{
};

TEST_P(PlannerSweep, StreamWellFormed)
{
    const auto [model_idx, algo] = GetParam();
    const Network net = allModels()[std::size_t(model_idx)];
    const OpStream s = buildOpStream(net, algo, 16);
    EXPECT_EQ(s.networkName, net.name);
    EXPECT_EQ(s.batch, 16);
    EXPECT_GT(s.ops.size(), 0u);
    EXPECT_GT(s.totalGemmMacs(), 0u);
    for (const auto &op : s.ops) {
        if (op.type == OpType::kGemm) {
            EXPECT_TRUE(op.shape.valid()) << net.name;
            EXPECT_GT(op.count, 0u);
        } else {
            EXPECT_GT(op.inElems, 0u) << net.name;
        }
    }
}

TEST_P(PlannerSweep, DpCostsMoreGemmWorkThanSgdOnlyForR)
{
    const auto [model_idx, algo] = GetParam();
    if (algo == TrainingAlgorithm::kSgd)
        GTEST_SKIP();
    const Network net = allModels()[std::size_t(model_idx)];
    const Macs sgd =
        buildOpStream(net, TrainingAlgorithm::kSgd, 16).totalGemmMacs();
    const Macs dp = buildOpStream(net, algo, 16).totalGemmMacs();
    // DP-SGD does the same GEMM work as SGD (different shapes);
    // DP-SGD(R) strictly more (second backprop).
    if (algo == TrainingAlgorithm::kDpSgd)
        EXPECT_EQ(dp, sgd);
    else
        EXPECT_GT(dp, sgd);
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, PlannerSweep,
    ::testing::Combine(::testing::Range(0, 9),
                       ::testing::Values(TrainingAlgorithm::kSgd,
                                         TrainingAlgorithm::kDpSgd,
                                         TrainingAlgorithm::kDpSgdR)));

} // namespace
} // namespace diva
