/**
 * @file
 * Unit tests for the tiled-GEMM DRAM traffic model.
 */

#include <gtest/gtest.h>

#include "arch/accelerator_config.h"
#include "gemm/traffic_model.h"
#include "mem/sram_buffer.h"

namespace diva
{
namespace
{

class TrafficModelTest : public ::testing::Test
{
  protected:
    SramBuffer sram_{tpuV3Ws()};
    GemmOptions opt_;
};

TEST_F(TrafficModelTest, SmallGemmReadsOperandsOnceWritesOutput)
{
    const GemmShape s(128, 128, 128);
    const DramTraffic t = gemmDramTraffic(s, sram_, 2, 4, opt_);
    EXPECT_EQ(t.readBytes, s.lhsBytes(2) + s.rhsBytes(2));
    EXPECT_EQ(t.writeBytes, s.outBytes(4));
}

TEST_F(TrafficModelTest, OutputWriteSuppressed)
{
    const GemmShape s(128, 128, 128);
    GemmOptions opt;
    opt.writeOutputToDram = false;
    const DramTraffic t = gemmDramTraffic(s, sram_, 2, 4, opt);
    EXPECT_EQ(t.writeBytes, 0u);
    EXPECT_GT(t.readBytes, 0u);
}

TEST_F(TrafficModelTest, ResidentOperandsSkipReads)
{
    const GemmShape s(128, 128, 128);
    GemmOptions opt;
    opt.lhsFromDram = false;
    const DramTraffic t = gemmDramTraffic(s, sram_, 2, 4, opt);
    EXPECT_EQ(t.readBytes, s.rhsBytes(2));

    opt.lhsFromDram = true;
    opt.rhsFromDram = false;
    const DramTraffic t2 = gemmDramTraffic(s, sram_, 2, 4, opt);
    EXPECT_EQ(t2.readBytes, s.lhsBytes(2));
}

TEST_F(TrafficModelTest, FittingRhsIsReadOnce)
{
    // RHS of 1024x1024x2B = 2 MiB fits in the 4 MiB partition even
    // though the LHS (64 MiB) does not.
    const GemmShape s(32768, 1024, 1024);
    ASSERT_GT(s.lhsBytes(2), sram_.lhsCapacity());
    ASSERT_LE(s.rhsBytes(2), sram_.rhsCapacity());
    const DramTraffic t = gemmDramTraffic(s, sram_, 2, 4, opt_);
    EXPECT_EQ(t.readBytes, s.lhsBytes(2) + s.rhsBytes(2));
}

TEST_F(TrafficModelTest, HugeGemmPaysMultiplePasses)
{
    // Both operands exceed their partitions: traffic must exceed the
    // compulsory minimum.
    const GemmShape s(16384, 16384, 16384);
    ASSERT_GT(s.lhsBytes(2), sram_.lhsCapacity());
    ASSERT_GT(s.rhsBytes(2), sram_.rhsCapacity());
    const DramTraffic t = gemmDramTraffic(s, sram_, 2, 4, opt_);
    EXPECT_GT(t.readBytes, s.lhsBytes(2) + s.rhsBytes(2));
    EXPECT_EQ(t.writeBytes, s.outBytes(4));
}

TEST_F(TrafficModelTest, TrafficMonotonicInProblemSize)
{
    const DramTraffic small =
        gemmDramTraffic(GemmShape(1024, 1024, 1024), sram_, 2, 4, opt_);
    const DramTraffic large =
        gemmDramTraffic(GemmShape(8192, 8192, 8192), sram_, 2, 4, opt_);
    EXPECT_GT(large.total(), small.total());
}

TEST_F(TrafficModelTest, LargerSramNeverIncreasesTraffic)
{
    AcceleratorConfig big = tpuV3Ws();
    big.sramBytes = 128_MiB;
    const SramBuffer big_sram(big);
    const GemmShape s(16384, 16384, 16384);
    const DramTraffic t_small = gemmDramTraffic(s, sram_, 2, 4, opt_);
    const DramTraffic t_big = gemmDramTraffic(s, big_sram, 2, 4, opt_);
    EXPECT_LE(t_big.total(), t_small.total());
}

TEST_F(TrafficModelTest, RejectsInvalidShape)
{
    EXPECT_THROW(gemmDramTraffic(GemmShape(0, 1, 1), sram_, 2, 4, opt_),
                 std::logic_error);
}

} // namespace
} // namespace diva
