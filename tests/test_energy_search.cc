/**
 * @file
 * Tests for the energy-constrained search mode: feasibility filtering
 * under joules/TDP budgets, best-throughput selection, exclusion of
 * unmodeled metrics, and the feasible Pareto frontier.
 */

#include <gtest/gtest.h>

#include "sweep/aggregate.h"

namespace diva
{
namespace
{

ScenarioResult
point(int batch, double seconds, double energy_j, double power_w)
{
    ScenarioResult r;
    r.resolvedBatch = batch;
    r.seconds = seconds;
    r.energyJ = energy_j;
    r.enginePowerW = power_w;
    return r;
}

/**
 * Fixture (batch 32 everywhere, so throughput orders inversely with
 * seconds):
 *   [0] fastest but hot:      0.010 s, 8 J, 40 W
 *   [1] mid speed, mid power: 0.020 s, 4 J, 20 W
 *   [2] slow and cool:        0.040 s, 2 J, 10 W
 *   [3] mid speed duplicate of [1] in time but cheaper energy
 *   [4] failed
 */
std::vector<ScenarioResult>
fixture()
{
    std::vector<ScenarioResult> results = {
        point(32, 0.010, 8.0, 40.0),
        point(32, 0.020, 4.0, 20.0),
        point(32, 0.040, 2.0, 10.0),
        point(32, 0.020, 3.0, 20.0),
        point(32, 0.005, 1.0, 5.0),
    };
    results[4].error = "boom";
    return results;
}

TEST(EnergySearch, ThroughputIsBatchOverSeconds)
{
    EXPECT_DOUBLE_EQ(throughputExamplesPerSec(point(32, 0.010, 0, 0)),
                     3200.0);
    EXPECT_EQ(throughputExamplesPerSec(point(32, 0.0, 0, 0)), 0.0);
}

TEST(EnergySearch, UnconstrainedBudgetKeepsAllSuccessfulResults)
{
    const EnergySearchResult s =
        energyConstrainedSearch(fixture(), EnergyBudget{});
    EXPECT_EQ(s.feasible, (std::vector<std::size_t>{0, 1, 2, 3}));
    ASSERT_TRUE(s.best.has_value());
    EXPECT_EQ(*s.best, 0u); // fastest wins without a budget
}

TEST(EnergySearch, JoulesBudgetSelectsBestThroughputUnderBudget)
{
    EnergyBudget budget;
    budget.maxJoulesPerIteration = 4.5;
    const EnergySearchResult s =
        energyConstrainedSearch(fixture(), budget);
    // [0] (8 J) busts the budget; [1] and [3] tie on throughput and
    // the tie breaks toward [3]'s lower energy.
    EXPECT_EQ(s.feasible, (std::vector<std::size_t>{1, 2, 3}));
    ASSERT_TRUE(s.best.has_value());
    EXPECT_EQ(*s.best, 3u);
}

TEST(EnergySearch, TdpBudgetFiltersOnEnginePower)
{
    EnergyBudget budget;
    budget.maxPowerW = 15.0;
    const EnergySearchResult s =
        energyConstrainedSearch(fixture(), budget);
    EXPECT_EQ(s.feasible, (std::vector<std::size_t>{2}));
    ASSERT_TRUE(s.best.has_value());
    EXPECT_EQ(*s.best, 2u);
}

TEST(EnergySearch, BothBudgetsIntersect)
{
    EnergyBudget budget;
    budget.maxJoulesPerIteration = 4.5;
    budget.maxPowerW = 20.0;
    const EnergySearchResult s =
        energyConstrainedSearch(fixture(), budget);
    EXPECT_EQ(s.feasible, (std::vector<std::size_t>{1, 2, 3}));
}

TEST(EnergySearch, InfeasibleBudgetYieldsNoBest)
{
    EnergyBudget budget;
    budget.maxJoulesPerIteration = 0.5;
    const EnergySearchResult s =
        energyConstrainedSearch(fixture(), budget);
    EXPECT_TRUE(s.feasible.empty());
    EXPECT_FALSE(s.best.has_value());
    EXPECT_TRUE(s.frontier.empty());
}

TEST(EnergySearch, UnmodeledEnergyIsNotTriviallyFeasible)
{
    // A GPU-roofline-style row reports energyJ == 0; under a joules
    // budget it must be excluded, not crowned the winner.
    std::vector<ScenarioResult> results = fixture();
    results.push_back(point(32, 0.001, 0.0, 0.0)); // fastest, no model
    EnergyBudget budget;
    budget.maxJoulesPerIteration = 4.5;
    const EnergySearchResult s = energyConstrainedSearch(results, budget);
    EXPECT_EQ(s.feasible, (std::vector<std::size_t>{1, 2, 3}));
    ASSERT_TRUE(s.best.has_value());
    EXPECT_NE(*s.best, 5u);
}

TEST(EnergySearch, FrontierIsFeasibleParetoOverSecondsAndEnergy)
{
    EnergyBudget budget;
    budget.maxJoulesPerIteration = 4.5;
    const EnergySearchResult s =
        energyConstrainedSearch(fixture(), budget);
    // Within {1,2,3}: [3] dominates [1] (same seconds, less energy);
    // [2] survives on energy.
    EXPECT_EQ(s.frontier, (std::vector<std::size_t>{2, 3}));
}

} // namespace
} // namespace diva
