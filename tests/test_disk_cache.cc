/**
 * @file
 * Tests for the persistent on-disk sweep result cache: round-trip
 * fidelity, corruption tolerance, version handling, the
 * never-persist-failures rule, and SweepRunner integration (fresh run
 * = misses, rerun = 100% hits, byte-identical CSV).
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "sweep/disk_cache.h"
#include "sweep/emit.h"
#include "sweep/runner.h"
#include "sweep/spec.h"

namespace diva
{
namespace
{

/** Unique empty cache directory under the test temp dir. */
std::string
freshCacheDir(const std::string &name)
{
    const std::filesystem::path dir =
        std::filesystem::path(::testing::TempDir()) / "diva-cache" / name;
    std::filesystem::remove_all(dir);
    return dir.string();
}

ScenarioResult
sampleResult(int salt)
{
    ScenarioResult r;
    r.resolvedBatch = 8 + salt;
    r.cycles = 1000 + Cycles(salt);
    r.computeCycles = 900 + Cycles(salt);
    r.allReduceCycles = 100;
    r.seconds = 0.125 + double(salt) * 1e-3;
    r.utilization = 0.5;
    r.energyJ = 2.5 + double(salt);
    r.dramBytes = 1 << 20;
    r.postProcDramBytes = 1 << 10;
    r.enginePowerW = 23.8;
    r.engineAreaMm2 = 85.0;
    return r;
}

TEST(DiskCache, RoundTripsEveryStoredField)
{
    const std::string dir = freshCacheDir("roundtrip");
    {
        DiskCache cache(dir);
        EXPECT_EQ(cache.size(), 0u);
        EXPECT_EQ(cache.append({{"key-a", sampleResult(1)},
                                {"key-b", sampleResult(2)}}),
                  2u);
    }
    DiskCache reloaded(dir);
    EXPECT_EQ(reloaded.size(), 2u);
    EXPECT_EQ(reloaded.corruptLinesSkipped(), 0u);
    ASSERT_TRUE(reloaded.contains("key-a"));
    const ScenarioResult &got = reloaded.entries().at("key-a");
    const ScenarioResult want = sampleResult(1);
    EXPECT_EQ(got.resolvedBatch, want.resolvedBatch);
    EXPECT_EQ(got.cycles, want.cycles);
    EXPECT_EQ(got.computeCycles, want.computeCycles);
    EXPECT_EQ(got.allReduceCycles, want.allReduceCycles);
    EXPECT_EQ(got.seconds, want.seconds);
    EXPECT_EQ(got.utilization, want.utilization);
    EXPECT_EQ(got.energyJ, want.energyJ);
    EXPECT_EQ(got.dramBytes, want.dramBytes);
    EXPECT_EQ(got.postProcDramBytes, want.postProcDramBytes);
    EXPECT_EQ(got.enginePowerW, want.enginePowerW);
    EXPECT_EQ(got.engineAreaMm2, want.engineAreaMm2);
    EXPECT_TRUE(got.ok());
}

TEST(DiskCache, AppendSkipsDuplicatesAndUnstorableKeys)
{
    const std::string dir = freshCacheDir("dupes");
    DiskCache cache(dir);
    EXPECT_EQ(cache.append({{"key", sampleResult(0)}}), 1u);
    EXPECT_EQ(cache.append({{"key", sampleResult(1)}}), 0u);
    EXPECT_EQ(cache.append({{"bad\tkey", sampleResult(0)}}), 0u);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(DiskCache, NeverPersistsFailedResults)
{
    const std::string dir = freshCacheDir("failures");
    {
        DiskCache cache(dir);
        ScenarioResult failed = sampleResult(0);
        failed.error = "transient boom";
        EXPECT_EQ(cache.append({{"failed-key", failed}}), 0u);
        EXPECT_FALSE(cache.contains("failed-key"));
    }
    DiskCache reloaded(dir);
    EXPECT_EQ(reloaded.size(), 0u);
}

TEST(DiskCache, SkipsCorruptLinesButKeepsValidOnes)
{
    const std::string dir = freshCacheDir("corrupt");
    std::string path;
    {
        DiskCache cache(dir);
        cache.append({{"good-1", sampleResult(1)}});
        path = cache.filePath();
    }
    // Simulate a torn append and an edited record.
    {
        std::ofstream out(path, std::ios::app);
        out << "deadbeefdeadbeef\tgarbage payload\n";
        out << "not even a record\n";
        out << "0123456789abcdef\ttruncated\t1\t2\n";
    }
    DiskCache cache(dir);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_TRUE(cache.contains("good-1"));
    EXPECT_EQ(cache.corruptLinesSkipped(), 3u);
    // The store stays writable after corruption.
    EXPECT_EQ(cache.append({{"good-2", sampleResult(2)}}), 1u);
    DiskCache reloaded(dir);
    EXPECT_EQ(reloaded.size(), 2u);
}

TEST(DiskCache, ForeignVersionIsIgnoredThenRewritten)
{
    const std::string dir = freshCacheDir("version");
    std::string path;
    {
        DiskCache cache(dir);
        cache.append({{"old-format-key", sampleResult(0)}});
        path = cache.filePath();
    }
    // Pretend a future version wrote the file.
    {
        std::ofstream out(path, std::ios::trunc);
        out << "diva-sweep-cache v999\n"
            << "some future record format\n";
    }
    DiskCache cache(dir);
    EXPECT_EQ(cache.size(), 0u); // foreign file: nothing half-parsed
    EXPECT_EQ(cache.append({{"new-key", sampleResult(1)}}), 1u);
    DiskCache reloaded(dir);
    EXPECT_EQ(reloaded.size(), 1u);
    EXPECT_TRUE(reloaded.contains("new-key"));
    EXPECT_EQ(reloaded.corruptLinesSkipped(), 0u);
}

/** 2 configs x 1 model x 2 algos, cheap to simulate. */
SweepSpec
tinySpec()
{
    SweepSpec spec;
    spec.configs = {tpuV3Ws(), divaDefault(true)};
    spec.models = {"SqueezeNet"};
    spec.algorithms = {TrainingAlgorithm::kDpSgd,
                       TrainingAlgorithm::kDpSgdR};
    spec.batches = {4};
    return spec;
}

TEST(DiskCache, RunnerFreshRunMissesRerunAllHits)
{
    const std::string dir = freshCacheDir("runner");
    const std::vector<Scenario> scenarios = tinySpec().expand().scenarios;

    SweepOptions opts;
    opts.cacheDir = dir;
    std::string first_csv;
    {
        SweepRunner runner(opts);
        const SweepReport report = runner.run(scenarios);
        EXPECT_EQ(report.cacheMisses, scenarios.size());
        EXPECT_EQ(report.cacheHits, 0u);
        std::ostringstream oss;
        writeCsv(oss, report);
        first_csv = oss.str();
    }
    {
        // A brand-new runner (= a new process) sees only the disk.
        SweepRunner runner(opts);
        const SweepReport report = runner.run(scenarios);
        EXPECT_EQ(report.cacheMisses, 0u);
        EXPECT_EQ(report.cacheHits, scenarios.size());
        for (const ScenarioResult &r : report.results)
            EXPECT_TRUE(r.cacheHit);
        std::ostringstream oss;
        writeCsv(oss, report);
        EXPECT_EQ(oss.str(), first_csv); // byte-identical CSV
    }
}

TEST(DiskCache, RunnerWithoutCacheDirDoesNotTouchDisk)
{
    SweepRunner runner;
    EXPECT_EQ(runner.diskCache(), nullptr);
}

TEST(DiskCache, RunnerPersistsAcrossClearCacheViaDisk)
{
    const std::string dir = freshCacheDir("clear");
    const std::vector<Scenario> scenarios = tinySpec().expand().scenarios;
    SweepOptions opts;
    opts.cacheDir = dir;
    opts.cacheAcrossRuns = false; // memory cleared, disk preloaded
    SweepRunner runner(opts);
    const SweepReport first = runner.run(scenarios);
    EXPECT_EQ(first.cacheMisses, scenarios.size());
    const SweepReport second = runner.run(scenarios);
    EXPECT_EQ(second.cacheMisses, 0u);
    EXPECT_EQ(second.cacheHits, scenarios.size());
}

} // namespace
} // namespace diva
