/**
 * @file
 * Unit tests for the GEMM shape descriptor.
 */

#include <gtest/gtest.h>

#include "gemm/gemm_shape.h"

namespace diva
{
namespace
{

TEST(GemmShape, Validity)
{
    EXPECT_FALSE(GemmShape().valid());
    EXPECT_FALSE(GemmShape(0, 1, 1).valid());
    EXPECT_FALSE(GemmShape(1, -1, 1).valid());
    EXPECT_TRUE(GemmShape(1, 1, 1).valid());
}

TEST(GemmShape, MacsAndFlops)
{
    const GemmShape s(4, 2, 4);
    EXPECT_EQ(s.macs(), 32u);
    EXPECT_DOUBLE_EQ(s.flops(), 64.0);
}

TEST(GemmShape, MacsDoNotOverflowAt64Bit)
{
    const GemmShape s(1 << 20, 1 << 20, 1 << 20);
    EXPECT_EQ(s.macs(), Macs(1) << 60);
}

TEST(GemmShape, OperandBytes)
{
    const GemmShape s(8, 16, 32);
    EXPECT_EQ(s.lhsBytes(2), 8u * 16 * 2);
    EXPECT_EQ(s.rhsBytes(2), 16u * 32 * 2);
    EXPECT_EQ(s.outBytes(4), 8u * 32 * 4);
}

TEST(GemmShape, IntensityGrowsWithK)
{
    const GemmShape small_k(1024, 1, 1024);
    const GemmShape big_k(1024, 1024, 1024);
    EXPECT_GT(big_k.intensity(2), small_k.intensity(2));
}

TEST(GemmShape, StringForm)
{
    EXPECT_EQ(GemmShape(1, 2, 3).str(), "1x2x3");
}

TEST(GemmShape, Equality)
{
    EXPECT_EQ(GemmShape(1, 2, 3), GemmShape(1, 2, 3));
    EXPECT_NE(GemmShape(1, 2, 3), GemmShape(3, 2, 1));
}

} // namespace
} // namespace diva
