/**
 * @file
 * Contract tests of the shared event-driven serve core
 * (src/serve_core/): (1) golden byte-identity -- the diva_serve and
 * diva_fleet CLIs must reproduce, bit for bit, CSV/JSON fixtures
 * captured from the pre-refactor per-quantum scan loops; (2)
 * coalescing equivalence -- one closed-form multi-quantum advance must
 * land on exactly the state k single-quantum advances produce; (3)
 * thread-count determinism -- the fleet emitters must produce the same
 * bytes with 1 and 4 engine threads (run in-process so the TSan job
 * also proves the epoch parallelism race-free).
 *
 * The golden tests run the tool binaries out of the build directory
 * (ctest's working directory) against fixtures under
 * tests/golden/serve_core/, and skip when the tools or the
 * DIVA_SOURCE_DIR compile definition are unavailable.
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "arrivals/generate.h"
#include "fleet/emit.h"
#include "fleet/engine.h"
#include "fleet/fleet.h"
#include "serve_core/core.h"

namespace diva
{
namespace
{

bool
exists(const std::string &path)
{
    return std::ifstream(path).good();
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream whole;
    whole << in.rdbuf();
    return whole.str();
}

/** Run a command with stdout/stderr dropped; -1 if system() failed. */
int
runQuiet(const std::string &cmd)
{
    const int status = std::system((cmd + " >/dev/null 2>&1").c_str());
    if (status == -1)
        return -1;
#ifdef WEXITSTATUS
    return WEXITSTATUS(status);
#else
    return status;
#endif
}

std::string
fixtureDir()
{
#ifdef DIVA_SOURCE_DIR
    return std::string(DIVA_SOURCE_DIR) + "/tests/golden/serve_core/";
#else
    return "";
#endif
}

// ------------------------------------------------------- golden diffs

class ServeCoreGolden : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        if (fixtureDir().empty() || !exists(fixtureDir() + "serve_closed.csv"))
            GTEST_SKIP() << "golden fixtures not found";
        if (!exists("./diva_serve") || !exists("./diva_fleet"))
            GTEST_SKIP() << "tool binaries not built";
    }

    /** Byte-compare a fresh output against a checked-in fixture. */
    void expectFixture(const std::string &fresh,
                       const std::string &fixture)
    {
        const std::string got = slurp(fresh);
        const std::string want = slurp(fixtureDir() + fixture);
        ASSERT_FALSE(want.empty()) << fixture << " fixture unreadable";
        EXPECT_TRUE(got == want)
            << fixture << ": output diverged from the pre-refactor "
            << "golden (" << got.size() << " vs " << want.size()
            << " bytes)";
        std::remove(fresh.c_str());
    }
};

TEST_F(ServeCoreGolden, ClosedLoopServeMatchesPreRefactorBytes)
{
    ASSERT_EQ(runQuiet("./diva_serve --policies all --tenants 3 "
                       "--steps 16 --quiet --csv sc_closed.csv "
                       "--json sc_closed.json"),
              0);
    expectFixture("sc_closed.csv", "serve_closed.csv");
    expectFixture("sc_closed.json", "serve_closed.json");
}

TEST_F(ServeCoreGolden, QuantumWallPriorityServeMatchesPreRefactorBytes)
{
    ASSERT_EQ(
        runQuiet("./diva_serve --policy prio "
                 "--tenant ResNet-50:32:2.5:0:2:64 "
                 "--tenant SqueezeNet:8:4:0.001:1:0:0.02 "
                 "--tenant MobileNet:8:0:0.002:3:40 "
                 "--quantum 3 --wall-s 0.05 --quiet "
                 "--csv sc_quantum.csv --json sc_quantum.json"),
        0);
    expectFixture("sc_quantum.csv", "serve_quantum.csv");
    expectFixture("sc_quantum.json", "serve_quantum.json");
}

TEST_F(ServeCoreGolden, PodTimeSharingServeMatchesPreRefactorBytes)
{
    ASSERT_EQ(runQuiet("./diva_serve --policy fifo --tenants 4 "
                       "--steps 12 --chips 4 --quantum 2 --quiet "
                       "--csv sc_pod.csv --json sc_pod.json"),
              0);
    expectFixture("sc_pod.csv", "serve_pod.csv");
    expectFixture("sc_pod.json", "serve_pod.json");
}

TEST_F(ServeCoreGolden, FleetReplayMatchesPreRefactorBytes)
{
    ASSERT_EQ(
        runQuiet("./diva_fleet --pod df=DiVa,count=3 --pod df=OS "
                 "--placement load "
                 "--arrivals diurnal:rate=24,horizon=6,seed=11,qos=4,"
                 "hold=4,cap=160 "
                 "--rebalance-every 0.5 --quiet --no-summary "
                 "--pod-csv sc_fleet_pod.csv --csv sc_fleet.csv "
                 "--json sc_fleet.json"),
        0);
    expectFixture("sc_fleet.csv", "fleet_smoke.csv");
    expectFixture("sc_fleet.json", "fleet_smoke.json");
    expectFixture("sc_fleet_pod.csv", "fleet_smoke_pod.csv");
}

// ---------------------------------------------- coalescing equivalence

/** Minimal serve_core client: fixed per-task costs, a billing log. */
struct MiniClient
{
    struct Task
    {
        double arrival = 0.0;
        double depart = 0.0;
        double rate = 0.0;
        std::uint64_t steps = 0;
        int priority = 0;
        double costSec = 0.0;
    };

    std::vector<Task> tasks;
    std::vector<serve_core::TaskCore> cores;
    double switchSec = 0.0005;

    /** Chronological (idx, stepStartSec, latencySec) billing log. */
    std::vector<std::tuple<std::uint32_t, double, double>> stepLog;
    std::vector<std::uint32_t> switchLog;

    explicit MiniClient(std::vector<Task> t)
        : tasks(std::move(t)), cores(tasks.size())
    {
    }

    bool owns(const serve_core::Executor &, std::uint32_t) const
    {
        return true;
    }
    double arrivalSec(std::uint32_t i) const { return tasks[i].arrival; }
    double departSec(std::uint32_t i) const { return tasks[i].depart; }
    double rateSps(std::uint32_t i) const { return tasks[i].rate; }
    double qosDeadlineSec(std::uint32_t) const { return 0.0; }
    std::uint64_t stepLimit(std::uint32_t i) const
    {
        return tasks[i].steps;
    }
    int priority(std::uint32_t i) const { return tasks[i].priority; }
    double stepSeconds(const serve_core::Executor &,
                       std::uint32_t i) const
    {
        return tasks[i].costSec;
    }
    double switchSeconds(const serve_core::Executor &) const
    {
        return switchSec;
    }
    serve_core::TaskCore &core(std::uint32_t i) { return cores[i]; }
    const serve_core::TaskCore &core(std::uint32_t i) const
    {
        return cores[i];
    }
    void onSwitch(serve_core::Executor &, std::uint32_t i)
    {
        switchLog.push_back(i);
    }
    void onStep(serve_core::Executor &, std::uint32_t i,
                double stepStartSec, double latencySec, double,
                double)
    {
        stepLog.emplace_back(i, stepStartSec, latencySec);
    }
    void onRetire(serve_core::Executor &, std::uint32_t) {}
};

serve_core::Executor
freshExecutor(const MiniClient &c)
{
    serve_core::Executor ex;
    ex.arrivals.resize(c.tasks.size());
    for (std::size_t i = 0; i < c.tasks.size(); ++i)
        ex.arrivals[i] = std::uint32_t(i);
    std::stable_sort(ex.arrivals.begin(), ex.arrivals.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                         return c.tasks[a].arrival < c.tasks[b].arrival;
                     });
    return ex;
}

std::vector<MiniClient::Task>
mixedTasks()
{
    std::vector<MiniClient::Task> tasks;
    for (int i = 0; i < 6; ++i) {
        MiniClient::Task t;
        t.arrival = 0.002 * double(i);
        t.steps = 40 + std::uint64_t(7 * i);
        t.costSec = 0.0009 + 0.0001 * double(i % 3);
        t.priority = i % 2;
        tasks.push_back(t);
    }
    // Sparse stragglers that run alone (pure coalescing regime) and
    // one rate-gated task (gate/promotion regime).
    MiniClient::Task solo;
    solo.arrival = 1.0;
    solo.steps = 64;
    solo.costSec = 0.001;
    tasks.push_back(solo);
    MiniClient::Task gated;
    gated.arrival = 0.001;
    gated.steps = 30;
    gated.rate = 20.0;
    gated.costSec = 0.0012;
    tasks.push_back(gated);
    return tasks;
}

/**
 * Drive one executor to completion with the multi-quantum fast path
 * enabled and a second with it disabled (Config::coalesce = false, so
 * every quantum expiry pays the full re-enqueue + promote + pick round
 * trip). Both must land on bit-identical clocks, per-task state and
 * billing logs -- coalescing k quanta may only skip k scheduler round
 * trips, never change the schedule. Each skipped round trip is one
 * saved dispatch, so the step-by-step run's dispatch count must equal
 * dispatches + coalescedQuanta of the coalesced run exactly.
 */
void
expectCoalescingEquivalence(serve_core::Config cfg)
{
    cfg.coalesce = true;
    MiniClient one(mixedTasks());
    serve_core::Executor exOne = freshExecutor(one);
    serve_core::runUntil(one, exOne, cfg, serve_core::kInfSec);

    cfg.coalesce = false;
    MiniClient single(mixedTasks());
    serve_core::Executor exSingle = freshExecutor(single);
    serve_core::runUntil(single, exSingle, cfg, serve_core::kInfSec);

    EXPECT_EQ(exOne.nowSec, exSingle.nowSec);
    EXPECT_EQ(exOne.counters.steps, single.stepLog.size());
    EXPECT_GT(exOne.counters.coalescedQuanta, 0u)
        << "workload never exercised the fast path";
    EXPECT_EQ(exSingle.counters.coalescedQuanta, 0u);
    EXPECT_EQ(exSingle.counters.dispatches,
              exOne.counters.dispatches + exOne.counters.coalescedQuanta)
        << "each coalesced quantum must stand in for exactly one "
        << "dispatch of the step-by-step run";
    ASSERT_EQ(one.stepLog.size(), single.stepLog.size());
    for (std::size_t s = 0; s < one.stepLog.size(); ++s)
        ASSERT_TRUE(one.stepLog[s] == single.stepLog[s])
            << "step " << s << " diverged: coalesced=(task "
            << std::get<0>(one.stepLog[s]) << ", start "
            << std::get<1>(one.stepLog[s]) << ", lat "
            << std::get<2>(one.stepLog[s]) << ") single=(task "
            << std::get<0>(single.stepLog[s]) << ", start "
            << std::get<1>(single.stepLog[s]) << ", lat "
            << std::get<2>(single.stepLog[s]) << ")";
    EXPECT_EQ(one.switchLog, single.switchLog);
    for (std::size_t i = 0; i < one.tasks.size(); ++i) {
        EXPECT_EQ(one.cores[i].done, single.cores[i].done) << "task " << i;
        EXPECT_EQ(one.cores[i].completed, single.cores[i].completed);
        EXPECT_EQ(one.cores[i].completionSec,
                  single.cores[i].completionSec);
    }
}

TEST(ServeCoreCoalescing, FleetModeMultiQuantumAdvanceEqualsSingleSteps)
{
    serve_core::Config cfg; // fleet-mode defaults
    cfg.policy = serve_core::Policy::kFifo;
    cfg.quantumIters = 4;
    expectCoalescingEquivalence(cfg);
}

TEST(ServeCoreCoalescing, TenantModeMultiQuantumAdvanceEqualsSingleSteps)
{
    serve_core::Config cfg;
    cfg.policy = serve_core::Policy::kRoundRobin;
    cfg.quantumIters = 3;
    cfg.rrIndexRotation = true;
    cfg.rateGates = true; // keep the rate-gated task gated
    cfg.strictArrivalPreempt = true;
    cfg.idleSkipsBlocked = true;
    cfg.endRunWhenNoWallFit = true;
    cfg.wallBoundary = true;
    expectCoalescingEquivalence(cfg);
}

TEST(ServeCoreCoalescing, EdfModeMultiQuantumAdvanceEqualsSingleSteps)
{
    serve_core::Config cfg;
    cfg.policy = serve_core::Policy::kEdf;
    cfg.quantumIters = 2;
    expectCoalescingEquivalence(cfg);
}

// ------------------------------------------- thread-count determinism

/**
 * The CI acceptance run distilled in-process: a generated diurnal
 * trace on a heterogeneous fleet must emit bit-identical CSV/JSON
 * whether epochs run on 1 or 4 worker threads. Running it in-process
 * (instead of via the CLI) puts the epoch parallelism under TSan in
 * the sanitizer job.
 */
TEST(ServeCoreDeterminism, FleetEmittersAreByteStableAcrossThreadCounts)
{
    std::string err;
    const auto gen = parseTraceGenSpec(
        "diurnal:rate=18,horizon=4,seed=11,qos=3,hold=3,cap=120", &err);
    ASSERT_TRUE(gen.has_value()) << err;
    const ArrivalTrace trace = generateTrace(*gen);

    const auto diva_pods = parsePodTemplate("df=DiVa,count=2", &err);
    ASSERT_TRUE(diva_pods.has_value()) << err;
    const auto os_pods = parsePodTemplate("df=OS", &err);
    ASSERT_TRUE(os_pods.has_value()) << err;
    FleetSpec spec = buildFleet({*diva_pods, *os_pods});
    spec.placement = PlacementKind::kLoadAware;
    spec.rebalance.enabled = true;
    spec.controlIntervalSec = 0.5;

    auto emitAll = [](const FleetResult &r) {
        std::ostringstream os;
        writeFleetTenantCsv(os, r);
        writeFleetPodCsv(os, r);
        writeFleetJson(os, r, true);
        return os.str();
    };

    SweepOptions opts;
    opts.threads = 2;
    SweepRunner runner(opts);
    const FleetResult one = simulateFleet(spec, trace, runner, 1);
    ASSERT_TRUE(one.ok()) << one.error;
    const FleetResult four = simulateFleet(spec, trace, runner, 4);
    ASSERT_TRUE(four.ok()) << four.error;

    EXPECT_TRUE(emitAll(one) == emitAll(four))
        << "fleet emitters diverged across engine thread counts";
}

} // namespace
} // namespace diva
