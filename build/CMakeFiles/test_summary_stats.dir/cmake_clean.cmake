file(REMOVE_RECURSE
  "CMakeFiles/test_summary_stats.dir/tests/test_summary_stats.cc.o"
  "CMakeFiles/test_summary_stats.dir/tests/test_summary_stats.cc.o.d"
  "test_summary_stats"
  "test_summary_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_summary_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
