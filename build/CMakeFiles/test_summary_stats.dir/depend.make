# Empty dependencies file for test_summary_stats.
# This may be replaced when dependencies are built.
