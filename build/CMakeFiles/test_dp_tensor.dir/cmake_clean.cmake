file(REMOVE_RECURSE
  "CMakeFiles/test_dp_tensor.dir/tests/test_dp_tensor.cc.o"
  "CMakeFiles/test_dp_tensor.dir/tests/test_dp_tensor.cc.o.d"
  "test_dp_tensor"
  "test_dp_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dp_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
