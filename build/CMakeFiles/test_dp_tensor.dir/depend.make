# Empty dependencies file for test_dp_tensor.
# This may be replaced when dependencies are built.
