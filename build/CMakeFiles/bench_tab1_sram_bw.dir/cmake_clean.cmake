file(REMOVE_RECURSE
  "CMakeFiles/bench_tab1_sram_bw.dir/bench/bench_tab1_sram_bw.cc.o"
  "CMakeFiles/bench_tab1_sram_bw.dir/bench/bench_tab1_sram_bw.cc.o.d"
  "bench_tab1_sram_bw"
  "bench_tab1_sram_bw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab1_sram_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
