# Empty dependencies file for bench_tab1_sram_bw.
# This may be replaced when dependencies are built.
