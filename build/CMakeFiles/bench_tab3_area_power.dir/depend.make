# Empty dependencies file for bench_tab3_area_power.
# This may be replaced when dependencies are built.
