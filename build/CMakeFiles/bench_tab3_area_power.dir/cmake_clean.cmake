file(REMOVE_RECURSE
  "CMakeFiles/bench_tab3_area_power.dir/bench/bench_tab3_area_power.cc.o"
  "CMakeFiles/bench_tab3_area_power.dir/bench/bench_tab3_area_power.cc.o.d"
  "bench_tab3_area_power"
  "bench_tab3_area_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab3_area_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
