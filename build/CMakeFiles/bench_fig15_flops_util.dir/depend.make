# Empty dependencies file for bench_fig15_flops_util.
# This may be replaced when dependencies are built.
