file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_flops_util.dir/bench/bench_fig15_flops_util.cc.o"
  "CMakeFiles/bench_fig15_flops_util.dir/bench/bench_fig15_flops_util.cc.o.d"
  "bench_fig15_flops_util"
  "bench_fig15_flops_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_flops_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
