file(REMOVE_RECURSE
  "libdiva.a"
)
