# Empty dependencies file for diva.
# This may be replaced when dependencies are built.
