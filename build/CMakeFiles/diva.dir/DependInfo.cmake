
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/accelerator_config.cc" "CMakeFiles/diva.dir/src/arch/accelerator_config.cc.o" "gcc" "CMakeFiles/diva.dir/src/arch/accelerator_config.cc.o.d"
  "/root/repo/src/common/logging.cc" "CMakeFiles/diva.dir/src/common/logging.cc.o" "gcc" "CMakeFiles/diva.dir/src/common/logging.cc.o.d"
  "/root/repo/src/common/rng.cc" "CMakeFiles/diva.dir/src/common/rng.cc.o" "gcc" "CMakeFiles/diva.dir/src/common/rng.cc.o.d"
  "/root/repo/src/common/table.cc" "CMakeFiles/diva.dir/src/common/table.cc.o" "gcc" "CMakeFiles/diva.dir/src/common/table.cc.o.d"
  "/root/repo/src/dp/accountant.cc" "CMakeFiles/diva.dir/src/dp/accountant.cc.o" "gcc" "CMakeFiles/diva.dir/src/dp/accountant.cc.o.d"
  "/root/repo/src/dp/conv2d.cc" "CMakeFiles/diva.dir/src/dp/conv2d.cc.o" "gcc" "CMakeFiles/diva.dir/src/dp/conv2d.cc.o.d"
  "/root/repo/src/dp/convnet.cc" "CMakeFiles/diva.dir/src/dp/convnet.cc.o" "gcc" "CMakeFiles/diva.dir/src/dp/convnet.cc.o.d"
  "/root/repo/src/dp/data.cc" "CMakeFiles/diva.dir/src/dp/data.cc.o" "gcc" "CMakeFiles/diva.dir/src/dp/data.cc.o.d"
  "/root/repo/src/dp/dp_sgd.cc" "CMakeFiles/diva.dir/src/dp/dp_sgd.cc.o" "gcc" "CMakeFiles/diva.dir/src/dp/dp_sgd.cc.o.d"
  "/root/repo/src/dp/im2col.cc" "CMakeFiles/diva.dir/src/dp/im2col.cc.o" "gcc" "CMakeFiles/diva.dir/src/dp/im2col.cc.o.d"
  "/root/repo/src/dp/linear.cc" "CMakeFiles/diva.dir/src/dp/linear.cc.o" "gcc" "CMakeFiles/diva.dir/src/dp/linear.cc.o.d"
  "/root/repo/src/dp/mlp.cc" "CMakeFiles/diva.dir/src/dp/mlp.cc.o" "gcc" "CMakeFiles/diva.dir/src/dp/mlp.cc.o.d"
  "/root/repo/src/dp/ops.cc" "CMakeFiles/diva.dir/src/dp/ops.cc.o" "gcc" "CMakeFiles/diva.dir/src/dp/ops.cc.o.d"
  "/root/repo/src/dp/seq_linear.cc" "CMakeFiles/diva.dir/src/dp/seq_linear.cc.o" "gcc" "CMakeFiles/diva.dir/src/dp/seq_linear.cc.o.d"
  "/root/repo/src/dp/tensor.cc" "CMakeFiles/diva.dir/src/dp/tensor.cc.o" "gcc" "CMakeFiles/diva.dir/src/dp/tensor.cc.o.d"
  "/root/repo/src/energy/energy_model.cc" "CMakeFiles/diva.dir/src/energy/energy_model.cc.o" "gcc" "CMakeFiles/diva.dir/src/energy/energy_model.cc.o.d"
  "/root/repo/src/gemm/bandwidth.cc" "CMakeFiles/diva.dir/src/gemm/bandwidth.cc.o" "gcc" "CMakeFiles/diva.dir/src/gemm/bandwidth.cc.o.d"
  "/root/repo/src/gemm/engine.cc" "CMakeFiles/diva.dir/src/gemm/engine.cc.o" "gcc" "CMakeFiles/diva.dir/src/gemm/engine.cc.o.d"
  "/root/repo/src/gemm/gemm_shape.cc" "CMakeFiles/diva.dir/src/gemm/gemm_shape.cc.o" "gcc" "CMakeFiles/diva.dir/src/gemm/gemm_shape.cc.o.d"
  "/root/repo/src/gemm/os_systolic.cc" "CMakeFiles/diva.dir/src/gemm/os_systolic.cc.o" "gcc" "CMakeFiles/diva.dir/src/gemm/os_systolic.cc.o.d"
  "/root/repo/src/gemm/outer_product.cc" "CMakeFiles/diva.dir/src/gemm/outer_product.cc.o" "gcc" "CMakeFiles/diva.dir/src/gemm/outer_product.cc.o.d"
  "/root/repo/src/gemm/reference_gemm.cc" "CMakeFiles/diva.dir/src/gemm/reference_gemm.cc.o" "gcc" "CMakeFiles/diva.dir/src/gemm/reference_gemm.cc.o.d"
  "/root/repo/src/gemm/shape_stats.cc" "CMakeFiles/diva.dir/src/gemm/shape_stats.cc.o" "gcc" "CMakeFiles/diva.dir/src/gemm/shape_stats.cc.o.d"
  "/root/repo/src/gemm/traffic_model.cc" "CMakeFiles/diva.dir/src/gemm/traffic_model.cc.o" "gcc" "CMakeFiles/diva.dir/src/gemm/traffic_model.cc.o.d"
  "/root/repo/src/gemm/ws_systolic.cc" "CMakeFiles/diva.dir/src/gemm/ws_systolic.cc.o" "gcc" "CMakeFiles/diva.dir/src/gemm/ws_systolic.cc.o.d"
  "/root/repo/src/gpu/gpu_model.cc" "CMakeFiles/diva.dir/src/gpu/gpu_model.cc.o" "gcc" "CMakeFiles/diva.dir/src/gpu/gpu_model.cc.o.d"
  "/root/repo/src/mem/dram_model.cc" "CMakeFiles/diva.dir/src/mem/dram_model.cc.o" "gcc" "CMakeFiles/diva.dir/src/mem/dram_model.cc.o.d"
  "/root/repo/src/mem/sram_buffer.cc" "CMakeFiles/diva.dir/src/mem/sram_buffer.cc.o" "gcc" "CMakeFiles/diva.dir/src/mem/sram_buffer.cc.o.d"
  "/root/repo/src/models/layer.cc" "CMakeFiles/diva.dir/src/models/layer.cc.o" "gcc" "CMakeFiles/diva.dir/src/models/layer.cc.o.d"
  "/root/repo/src/models/network.cc" "CMakeFiles/diva.dir/src/models/network.cc.o" "gcc" "CMakeFiles/diva.dir/src/models/network.cc.o.d"
  "/root/repo/src/models/random_network.cc" "CMakeFiles/diva.dir/src/models/random_network.cc.o" "gcc" "CMakeFiles/diva.dir/src/models/random_network.cc.o.d"
  "/root/repo/src/models/summary.cc" "CMakeFiles/diva.dir/src/models/summary.cc.o" "gcc" "CMakeFiles/diva.dir/src/models/summary.cc.o.d"
  "/root/repo/src/models/zoo_cnn.cc" "CMakeFiles/diva.dir/src/models/zoo_cnn.cc.o" "gcc" "CMakeFiles/diva.dir/src/models/zoo_cnn.cc.o.d"
  "/root/repo/src/models/zoo_nlp.cc" "CMakeFiles/diva.dir/src/models/zoo_nlp.cc.o" "gcc" "CMakeFiles/diva.dir/src/models/zoo_nlp.cc.o.d"
  "/root/repo/src/ppu/adder_tree.cc" "CMakeFiles/diva.dir/src/ppu/adder_tree.cc.o" "gcc" "CMakeFiles/diva.dir/src/ppu/adder_tree.cc.o.d"
  "/root/repo/src/ppu/ppu_model.cc" "CMakeFiles/diva.dir/src/ppu/ppu_model.cc.o" "gcc" "CMakeFiles/diva.dir/src/ppu/ppu_model.cc.o.d"
  "/root/repo/src/ppu/vector_unit.cc" "CMakeFiles/diva.dir/src/ppu/vector_unit.cc.o" "gcc" "CMakeFiles/diva.dir/src/ppu/vector_unit.cc.o.d"
  "/root/repo/src/sim/executor.cc" "CMakeFiles/diva.dir/src/sim/executor.cc.o" "gcc" "CMakeFiles/diva.dir/src/sim/executor.cc.o.d"
  "/root/repo/src/sim/multichip.cc" "CMakeFiles/diva.dir/src/sim/multichip.cc.o" "gcc" "CMakeFiles/diva.dir/src/sim/multichip.cc.o.d"
  "/root/repo/src/sim/result.cc" "CMakeFiles/diva.dir/src/sim/result.cc.o" "gcc" "CMakeFiles/diva.dir/src/sim/result.cc.o.d"
  "/root/repo/src/sim/roofline.cc" "CMakeFiles/diva.dir/src/sim/roofline.cc.o" "gcc" "CMakeFiles/diva.dir/src/sim/roofline.cc.o.d"
  "/root/repo/src/sim/stage.cc" "CMakeFiles/diva.dir/src/sim/stage.cc.o" "gcc" "CMakeFiles/diva.dir/src/sim/stage.cc.o.d"
  "/root/repo/src/sim/trace.cc" "CMakeFiles/diva.dir/src/sim/trace.cc.o" "gcc" "CMakeFiles/diva.dir/src/sim/trace.cc.o.d"
  "/root/repo/src/sweep/aggregate.cc" "CMakeFiles/diva.dir/src/sweep/aggregate.cc.o" "gcc" "CMakeFiles/diva.dir/src/sweep/aggregate.cc.o.d"
  "/root/repo/src/sweep/emit.cc" "CMakeFiles/diva.dir/src/sweep/emit.cc.o" "gcc" "CMakeFiles/diva.dir/src/sweep/emit.cc.o.d"
  "/root/repo/src/sweep/runner.cc" "CMakeFiles/diva.dir/src/sweep/runner.cc.o" "gcc" "CMakeFiles/diva.dir/src/sweep/runner.cc.o.d"
  "/root/repo/src/sweep/scenario.cc" "CMakeFiles/diva.dir/src/sweep/scenario.cc.o" "gcc" "CMakeFiles/diva.dir/src/sweep/scenario.cc.o.d"
  "/root/repo/src/sweep/spec.cc" "CMakeFiles/diva.dir/src/sweep/spec.cc.o" "gcc" "CMakeFiles/diva.dir/src/sweep/spec.cc.o.d"
  "/root/repo/src/train/memory_model.cc" "CMakeFiles/diva.dir/src/train/memory_model.cc.o" "gcc" "CMakeFiles/diva.dir/src/train/memory_model.cc.o.d"
  "/root/repo/src/train/op.cc" "CMakeFiles/diva.dir/src/train/op.cc.o" "gcc" "CMakeFiles/diva.dir/src/train/op.cc.o.d"
  "/root/repo/src/train/planner.cc" "CMakeFiles/diva.dir/src/train/planner.cc.o" "gcc" "CMakeFiles/diva.dir/src/train/planner.cc.o.d"
  "/root/repo/src/train/schedule.cc" "CMakeFiles/diva.dir/src/train/schedule.cc.o" "gcc" "CMakeFiles/diva.dir/src/train/schedule.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
