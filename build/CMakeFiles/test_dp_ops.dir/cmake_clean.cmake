file(REMOVE_RECURSE
  "CMakeFiles/test_dp_ops.dir/tests/test_dp_ops.cc.o"
  "CMakeFiles/test_dp_ops.dir/tests/test_dp_ops.cc.o.d"
  "test_dp_ops"
  "test_dp_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dp_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
