# Empty dependencies file for test_dp_ops.
# This may be replaced when dependencies are built.
