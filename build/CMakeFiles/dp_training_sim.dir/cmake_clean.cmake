file(REMOVE_RECURSE
  "CMakeFiles/dp_training_sim.dir/examples/dp_training_sim.cpp.o"
  "CMakeFiles/dp_training_sim.dir/examples/dp_training_sim.cpp.o.d"
  "dp_training_sim"
  "dp_training_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_training_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
