# Empty dependencies file for dp_training_sim.
# This may be replaced when dependencies are built.
