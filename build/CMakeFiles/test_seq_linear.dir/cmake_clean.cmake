file(REMOVE_RECURSE
  "CMakeFiles/test_seq_linear.dir/tests/test_seq_linear.cc.o"
  "CMakeFiles/test_seq_linear.dir/tests/test_seq_linear.cc.o.d"
  "test_seq_linear"
  "test_seq_linear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_seq_linear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
