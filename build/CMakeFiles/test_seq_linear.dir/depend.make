# Empty dependencies file for test_seq_linear.
# This may be replaced when dependencies are built.
