# Empty dependencies file for test_dp_integration.
# This may be replaced when dependencies are built.
