file(REMOVE_RECURSE
  "CMakeFiles/test_dp_integration.dir/tests/test_dp_integration.cc.o"
  "CMakeFiles/test_dp_integration.dir/tests/test_dp_integration.cc.o.d"
  "test_dp_integration"
  "test_dp_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dp_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
