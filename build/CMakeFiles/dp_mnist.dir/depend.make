# Empty dependencies file for dp_mnist.
# This may be replaced when dependencies are built.
