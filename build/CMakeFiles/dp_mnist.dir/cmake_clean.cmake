file(REMOVE_RECURSE
  "CMakeFiles/dp_mnist.dir/examples/dp_mnist.cpp.o"
  "CMakeFiles/dp_mnist.dir/examples/dp_mnist.cpp.o.d"
  "dp_mnist"
  "dp_mnist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_mnist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
