file(REMOVE_RECURSE
  "CMakeFiles/test_crosscheck.dir/tests/test_crosscheck.cc.o"
  "CMakeFiles/test_crosscheck.dir/tests/test_crosscheck.cc.o.d"
  "test_crosscheck"
  "test_crosscheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crosscheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
