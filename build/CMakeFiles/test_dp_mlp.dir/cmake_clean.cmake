file(REMOVE_RECURSE
  "CMakeFiles/test_dp_mlp.dir/tests/test_dp_mlp.cc.o"
  "CMakeFiles/test_dp_mlp.dir/tests/test_dp_mlp.cc.o.d"
  "test_dp_mlp"
  "test_dp_mlp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dp_mlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
