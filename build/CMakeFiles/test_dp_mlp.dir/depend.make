# Empty dependencies file for test_dp_mlp.
# This may be replaced when dependencies are built.
