file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_memory.dir/bench/bench_fig4_memory.cc.o"
  "CMakeFiles/bench_fig4_memory.dir/bench/bench_fig4_memory.cc.o.d"
  "bench_fig4_memory"
  "bench_fig4_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
