file(REMOVE_RECURSE
  "CMakeFiles/test_dp_sgd.dir/tests/test_dp_sgd.cc.o"
  "CMakeFiles/test_dp_sgd.dir/tests/test_dp_sgd.cc.o.d"
  "test_dp_sgd"
  "test_dp_sgd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dp_sgd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
