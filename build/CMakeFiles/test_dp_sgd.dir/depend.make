# Empty dependencies file for test_dp_sgd.
# This may be replaced when dependencies are built.
