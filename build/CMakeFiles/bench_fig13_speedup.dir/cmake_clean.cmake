file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_speedup.dir/bench/bench_fig13_speedup.cc.o"
  "CMakeFiles/bench_fig13_speedup.dir/bench/bench_fig13_speedup.cc.o.d"
  "bench_fig13_speedup"
  "bench_fig13_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
