# Empty dependencies file for bench_fig13_speedup.
# This may be replaced when dependencies are built.
