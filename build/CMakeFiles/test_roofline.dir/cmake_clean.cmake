file(REMOVE_RECURSE
  "CMakeFiles/test_roofline.dir/tests/test_roofline.cc.o"
  "CMakeFiles/test_roofline.dir/tests/test_roofline.cc.o.d"
  "test_roofline"
  "test_roofline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
