# Empty dependencies file for test_roofline.
# This may be replaced when dependencies are built.
