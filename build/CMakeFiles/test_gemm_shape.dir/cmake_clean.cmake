file(REMOVE_RECURSE
  "CMakeFiles/test_gemm_shape.dir/tests/test_gemm_shape.cc.o"
  "CMakeFiles/test_gemm_shape.dir/tests/test_gemm_shape.cc.o.d"
  "test_gemm_shape"
  "test_gemm_shape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gemm_shape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
