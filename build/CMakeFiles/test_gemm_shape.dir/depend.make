# Empty dependencies file for test_gemm_shape.
# This may be replaced when dependencies are built.
