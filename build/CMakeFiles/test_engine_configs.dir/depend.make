# Empty dependencies file for test_engine_configs.
# This may be replaced when dependencies are built.
