file(REMOVE_RECURSE
  "CMakeFiles/test_engine_configs.dir/tests/test_engine_configs.cc.o"
  "CMakeFiles/test_engine_configs.dir/tests/test_engine_configs.cc.o.d"
  "test_engine_configs"
  "test_engine_configs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
