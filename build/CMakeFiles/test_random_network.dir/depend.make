# Empty dependencies file for test_random_network.
# This may be replaced when dependencies are built.
