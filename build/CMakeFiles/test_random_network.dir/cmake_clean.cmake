file(REMOVE_RECURSE
  "CMakeFiles/test_random_network.dir/tests/test_random_network.cc.o"
  "CMakeFiles/test_random_network.dir/tests/test_random_network.cc.o.d"
  "test_random_network"
  "test_random_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_random_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
