file(REMOVE_RECURSE
  "CMakeFiles/test_convnet.dir/tests/test_convnet.cc.o"
  "CMakeFiles/test_convnet.dir/tests/test_convnet.cc.o.d"
  "test_convnet"
  "test_convnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_convnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
