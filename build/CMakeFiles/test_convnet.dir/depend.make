# Empty dependencies file for test_convnet.
# This may be replaced when dependencies are built.
