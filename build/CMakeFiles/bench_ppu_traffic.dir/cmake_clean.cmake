file(REMOVE_RECURSE
  "CMakeFiles/bench_ppu_traffic.dir/bench/bench_ppu_traffic.cc.o"
  "CMakeFiles/bench_ppu_traffic.dir/bench/bench_ppu_traffic.cc.o.d"
  "bench_ppu_traffic"
  "bench_ppu_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ppu_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
