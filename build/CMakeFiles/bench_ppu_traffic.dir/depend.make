# Empty dependencies file for bench_ppu_traffic.
# This may be replaced when dependencies are built.
