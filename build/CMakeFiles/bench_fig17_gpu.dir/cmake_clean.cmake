file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_gpu.dir/bench/bench_fig17_gpu.cc.o"
  "CMakeFiles/bench_fig17_gpu.dir/bench/bench_fig17_gpu.cc.o.d"
  "bench_fig17_gpu"
  "bench_fig17_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
