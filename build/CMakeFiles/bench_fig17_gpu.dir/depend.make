# Empty dependencies file for bench_fig17_gpu.
# This may be replaced when dependencies are built.
