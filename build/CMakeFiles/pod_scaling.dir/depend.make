# Empty dependencies file for pod_scaling.
# This may be replaced when dependencies are built.
