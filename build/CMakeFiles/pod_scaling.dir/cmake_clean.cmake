file(REMOVE_RECURSE
  "CMakeFiles/pod_scaling.dir/examples/pod_scaling.cpp.o"
  "CMakeFiles/pod_scaling.dir/examples/pod_scaling.cpp.o.d"
  "pod_scaling"
  "pod_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pod_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
