file(REMOVE_RECURSE
  "CMakeFiles/microbatch_tradeoff.dir/examples/microbatch_tradeoff.cpp.o"
  "CMakeFiles/microbatch_tradeoff.dir/examples/microbatch_tradeoff.cpp.o.d"
  "microbatch_tradeoff"
  "microbatch_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microbatch_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
