# Empty dependencies file for microbatch_tradeoff.
# This may be replaced when dependencies are built.
