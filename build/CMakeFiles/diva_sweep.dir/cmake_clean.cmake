file(REMOVE_RECURSE
  "CMakeFiles/diva_sweep.dir/tools/diva_sweep.cc.o"
  "CMakeFiles/diva_sweep.dir/tools/diva_sweep.cc.o.d"
  "diva_sweep"
  "diva_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diva_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
