# Empty dependencies file for diva_sweep.
# This may be replaced when dependencies are built.
