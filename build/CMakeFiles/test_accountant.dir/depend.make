# Empty dependencies file for test_accountant.
# This may be replaced when dependencies are built.
