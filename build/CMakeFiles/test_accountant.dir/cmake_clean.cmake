file(REMOVE_RECURSE
  "CMakeFiles/test_accountant.dir/tests/test_accountant.cc.o"
  "CMakeFiles/test_accountant.dir/tests/test_accountant.cc.o.d"
  "test_accountant"
  "test_accountant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_accountant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
