# Empty dependencies file for test_ppu.
# This may be replaced when dependencies are built.
