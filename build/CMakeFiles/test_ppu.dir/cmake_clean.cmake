file(REMOVE_RECURSE
  "CMakeFiles/test_ppu.dir/tests/test_ppu.cc.o"
  "CMakeFiles/test_ppu.dir/tests/test_ppu.cc.o.d"
  "test_ppu"
  "test_ppu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ppu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
