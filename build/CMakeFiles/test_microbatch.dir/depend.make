# Empty dependencies file for test_microbatch.
# This may be replaced when dependencies are built.
