file(REMOVE_RECURSE
  "CMakeFiles/test_microbatch.dir/tests/test_microbatch.cc.o"
  "CMakeFiles/test_microbatch.dir/tests/test_microbatch.cc.o.d"
  "test_microbatch"
  "test_microbatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_microbatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
