file(REMOVE_RECURSE
  "CMakeFiles/batch_size_explorer.dir/examples/batch_size_explorer.cpp.o"
  "CMakeFiles/batch_size_explorer.dir/examples/batch_size_explorer.cpp.o.d"
  "batch_size_explorer"
  "batch_size_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_size_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
