# Empty dependencies file for batch_size_explorer.
# This may be replaced when dependencies are built.
