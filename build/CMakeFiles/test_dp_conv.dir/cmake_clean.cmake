file(REMOVE_RECURSE
  "CMakeFiles/test_dp_conv.dir/tests/test_dp_conv.cc.o"
  "CMakeFiles/test_dp_conv.dir/tests/test_dp_conv.cc.o.d"
  "test_dp_conv"
  "test_dp_conv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dp_conv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
