# Empty dependencies file for test_dp_conv.
# This may be replaced when dependencies are built.
