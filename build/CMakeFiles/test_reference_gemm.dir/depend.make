# Empty dependencies file for test_reference_gemm.
# This may be replaced when dependencies are built.
