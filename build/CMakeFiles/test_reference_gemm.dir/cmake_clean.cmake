file(REMOVE_RECURSE
  "CMakeFiles/test_reference_gemm.dir/tests/test_reference_gemm.cc.o"
  "CMakeFiles/test_reference_gemm.dir/tests/test_reference_gemm.cc.o.d"
  "test_reference_gemm"
  "test_reference_gemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reference_gemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
