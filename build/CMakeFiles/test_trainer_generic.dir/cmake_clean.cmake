file(REMOVE_RECURSE
  "CMakeFiles/test_trainer_generic.dir/tests/test_trainer_generic.cc.o"
  "CMakeFiles/test_trainer_generic.dir/tests/test_trainer_generic.cc.o.d"
  "test_trainer_generic"
  "test_trainer_generic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trainer_generic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
