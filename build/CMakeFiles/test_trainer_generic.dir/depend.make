# Empty dependencies file for test_trainer_generic.
# This may be replaced when dependencies are built.
