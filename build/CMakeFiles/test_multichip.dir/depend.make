# Empty dependencies file for test_multichip.
# This may be replaced when dependencies are built.
