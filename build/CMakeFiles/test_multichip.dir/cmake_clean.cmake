file(REMOVE_RECURSE
  "CMakeFiles/test_multichip.dir/tests/test_multichip.cc.o"
  "CMakeFiles/test_multichip.dir/tests/test_multichip.cc.o.d"
  "test_multichip"
  "test_multichip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multichip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
