/**
 * @file
 * Flag-value parsing helpers shared by the tools/ CLIs: comma-list
 * splitting and integer/double parsing that demand full consumption of
 * the text (trailing garbage rejects) and report failure through
 * std::optional instead of exceptions, so each tool can attach its own
 * one-line error message.
 */

#ifndef DIVA_TOOLS_CLI_PARSE_H
#define DIVA_TOOLS_CLI_PARSE_H

#include <cmath>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

namespace diva::cli
{

/** Split a comma-separated list, dropping empty items. */
inline std::vector<std::string>
splitList(const std::string &arg)
{
    std::vector<std::string> out;
    std::stringstream ss(arg);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

/** Parse a whole string as an integer; nullopt on any malformation. */
inline std::optional<long long>
parseIntText(const std::string &text)
{
    try {
        std::size_t consumed = 0;
        const long long value = std::stoll(text, &consumed);
        if (consumed == text.size())
            return value;
    } catch (const std::exception &) {
    }
    return std::nullopt;
}

/** Parse a whole string as a finite double; nullopt otherwise. */
inline std::optional<double>
parseDoubleText(const std::string &text)
{
    try {
        std::size_t consumed = 0;
        const double value = std::stod(text, &consumed);
        if (consumed == text.size() && std::isfinite(value))
            return value;
    } catch (const std::exception &) {
    }
    return std::nullopt;
}

} // namespace diva::cli

#endif // DIVA_TOOLS_CLI_PARSE_H
