/**
 * @file
 * Flag-value parsing helpers shared by the tools/ CLIs: comma-list
 * splitting and integer/double parsing that demand full consumption of
 * the text (trailing garbage rejects) and report failure through
 * std::optional instead of exceptions, so each tool can attach its own
 * one-line error message.
 */

#ifndef DIVA_TOOLS_CLI_PARSE_H
#define DIVA_TOOLS_CLI_PARSE_H

#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "backend/registry.h"
#include "common/parse.h"

namespace diva::cli
{

// The number parsers live in common/parse.h (shared with the trace
// loaders); re-exported here so the tools keep their cli:: spelling.
using diva::parseDoubleText;
using diva::parseIntText;

/** Split a comma-separated list, dropping empty items. */
inline std::vector<std::string>
splitList(const std::string &arg)
{
    std::vector<std::string> out;
    std::stringstream ss(arg);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

/**
 * Parse a --backends value: every comma-separated name must resolve
 * through the BackendRegistry. Returns the deduplicated names in the
 * order given, or nullopt after printing a one-line "tool: ..." error
 * naming the registered backends.
 */
inline std::optional<std::vector<std::string>>
parseBackendList(const std::string &tool, const std::string &text)
{
    std::vector<std::string> out;
    for (const std::string &name : splitList(text)) {
        if (!BackendRegistry::instance().find(name)) {
            std::ostringstream registered;
            for (const std::string &n :
                 BackendRegistry::instance().names())
                registered << (registered.tellp() > 0 ? ", " : "") << n;
            std::cerr << tool << ": unknown backend '" << name
                      << "' (registered: " << registered.str() << ")\n";
            return std::nullopt;
        }
        bool seen = false;
        for (const std::string &have : out)
            seen = seen || have == name;
        if (!seen)
            out.push_back(name);
    }
    if (out.empty()) {
        std::cerr << tool << ": --backends needs at least one name\n";
        return std::nullopt;
    }
    return out;
}

} // namespace diva::cli

#endif // DIVA_TOOLS_CLI_PARSE_H
