/**
 * @file
 * diva_sweep: parallel design-space sweep driver.
 *
 * Expands cartesian axes (dataflow x PPU x model x batch x algorithm,
 * plus optional pod and GPU backends; pod shape sweeps over chip
 * count, interconnect bandwidth and link latency) into scenarios, runs
 * them on a worker pool with result caching, and emits deterministic
 * CSV plus a Figure-13-style speedup table against the
 * weight-stationary TPUv3 baseline. With --cache-dir the result cache
 * persists on disk, so repeated invocations skip already-simulated
 * scenarios; --mode energy searches for the best-throughput config
 * under a --budget-j / --budget-w energy envelope.
 *
 * All sweep output goes to stdout (or --csv/--json files) and is a
 * pure function of the scenario list: running with --threads 4 is
 * byte-identical to --threads 1, and a warm-cache rerun emits the same
 * CSV/JSON bytes as the cold run. Progress, timing, and cache
 * accounting go to stderr / the summary.
 *
 * The WS baseline rows needed for the speedup table are swept first;
 * when the main sweep meets them again (WS is part of the default
 * dataflow axis) they are served from the result cache and reported
 * as cache hits.
 */

#include <algorithm>
#include <climits>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "arrivals/generate.h"
#include "arrivals/replay.h"
#include "arrivals/trace.h"
#include "backend/registry.h"
#include "cli_parse.h"
#include "common/logging.h"
#include "common/table.h"
#include "obs/cli.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "sweep/aggregate.h"
#include "sweep/disk_cache.h"
#include "sweep/emit.h"
#include "sweep/runner.h"
#include "sweep/scenario.h"
#include "sweep/spec.h"
#include "tenant/emit.h"
#include "tenant/serve.h"

using namespace diva;

namespace
{

void
usage()
{
    std::cerr <<
        "usage: diva_sweep [options]\n"
        "\n"
        "Sweep axes (comma-separated lists):\n"
        "  --models LIST       zoo models (default ResNet-50,BERT-base;\n"
        "                      see --list-models)\n"
        "  --scales LIST       input scales: image side / seq len\n"
        "                      (default 0 = paper baseline)\n"
        "  --dataflows LIST    WS,OS,DiVa (default all)\n"
        "  --ppu LIST          off,on (default both; invalid combos\n"
        "                      such as WS+PPU are skipped)\n"
        "  --algos LIST        sgd,dpsgd,dpsgdr (default dpsgd,dpsgdr)\n"
        "  --batches LIST      sizes or 'auto' = largest vanilla DP-SGD\n"
        "                      batch under 16 GiB (default auto,32,64)\n"
        "  --microbatches LIST micro-batch sizes, 0 = monolithic\n"
        "                      (default 0)\n"
        "  --chips LIST        add a data-parallel pod backend with\n"
        "                      these chip counts\n"
        "  --ici-gbs LIST      pod interconnect bandwidths in GB/s\n"
        "                      (default 70; implies --chips 8)\n"
        "  --link-lat LIST     pod link latencies in core cycles\n"
        "                      (default 500; implies --chips 8)\n"
        "  --gpus LIST         add GPU baselines: v100-fp32,v100-fp16,\n"
        "                      a100-fp32,a100-fp16\n"
        "  --backends LIST     execution backends by registry name\n"
        "                      (chip,pod,gpu); default: chip, plus pod\n"
        "                      when a pod axis is given, plus gpu when\n"
        "                      --gpus is given\n"
        "\n"
        "Execution:\n"
        "  --threads N         worker threads (default 1)\n"
        "  --quiet             no stderr progress\n"
        "  --no-plan-cache     rebuild workload plans per scenario\n"
        "                      (output is byte-identical either way)\n"
        "  --cache-dir PATH    persistent result cache: scenarios\n"
        "                      simulated by earlier invocations are\n"
        "                      served from disk\n"
        "  --cache             like --cache-dir with the default dir\n"
        "                      ($DIVA_CACHE_DIR, else ~/.cache/diva)\n"
        "\n"
        "Search mode:\n"
        "  --mode MODE         sweep (default), energy (best config\n"
        "                      under an energy budget), tenant\n"
        "                      (multi-tenant time-sharing serve over\n"
        "                      policy x config axes), duration\n"
        "                      (steps completed per tenant/config in a\n"
        "                      fixed --wall-s budget), or trace\n"
        "                      (open-loop arrival replay over policy x\n"
        "                      config x load axes)\n"
        "  --budget-j J        max joules per iteration (mode energy)\n"
        "  --budget-w W        max engine TDP in watts, pod-wide for\n"
        "                      pods (mode energy)\n"
        "\n"
        "Trace mode (--mode trace; shares the plan/result caches):\n"
        "  --arrivals SPEC     seeded generator spec, e.g.\n"
        "                      poisson:rate=4,seed=7,hold=2,qos=2\n"
        "                      (see diva_serve --help for keys)\n"
        "  --trace FILE        replay a recorded CSV/JSONL trace\n"
        "  --loads LIST        rate multipliers swept over the\n"
        "                      generator (default 1; --arrivals only)\n"
        "  --admission         shed tenants whose aggregate QoS\n"
        "                      demand exceeds capacity\n"
        "  --admission-cap U   utilization cap (default 1.0)\n"
        "\n"
        "Tenant/duration modes (one tenant per --models entry, batch\n"
        "and algorithm from the first --batches/--algos value,\n"
        "fair-share QoS targets):\n"
        "  --policies LIST     fifo,rr,prio,edf or 'all' (default all)\n"
        "  --steps N           steps per tenant in tenant mode\n"
        "                      (default 32)\n"
        "  --wall-s S          wall-clock budget in simulated seconds\n"
        "                      (required by duration mode)\n"
        "  --quantum N         iterations per scheduling quantum\n"
        "                      (default 1)\n"
        "  --arrive-every S    stagger tenant arrivals (default 0)\n"
        "\n"
        "Output (deterministic; independent of --threads and of the\n"
        "cache state):\n"
        "  --csv PATH          write CSV to PATH instead of stdout\n"
        "  --json PATH         also write a JSON report\n"
        "  --pareto LIST       print the Pareto frontier over these\n"
        "                      objectives: cycles,seconds,utilization,\n"
        "                      energy,dram_bytes,power,area\n"
        "  --no-speedup        skip the Fig.13-style speedup table\n"
        "  --list-models       print zoo model names and exit\n"
        "\n" << obs::cliObsUsage();
}

using cli::splitList;

std::optional<TrainingAlgorithm>
parseAlgo(std::string name)
{
    for (char &c : name)
        c = char(std::tolower(c));
    if (name == "sgd")
        return TrainingAlgorithm::kSgd;
    if (name == "dpsgd" || name == "dp-sgd")
        return TrainingAlgorithm::kDpSgd;
    if (name == "dpsgdr" || name == "dp-sgd-r" || name == "dp-sgd(r)")
        return TrainingAlgorithm::kDpSgdR;
    return std::nullopt;
}

std::optional<GpuConfig>
parseGpu(const std::string &name)
{
    if (name == "v100-fp32")
        return GpuConfig::v100Fp32();
    if (name == "v100-fp16")
        return GpuConfig::v100Fp16();
    if (name == "a100-fp32")
        return GpuConfig::a100Fp32();
    if (name == "a100-fp16")
        return GpuConfig::a100Fp16();
    return std::nullopt;
}

/** The preset for one (dataflow, ppu) combo; invalid combos included
 *  verbatim so expand() counts them as skipped. */
AcceleratorConfig
configFor(Dataflow df, bool ppu)
{
    switch (df) {
      case Dataflow::kWeightStationary: {
        AcceleratorConfig cfg = tpuV3Ws();
        cfg.hasPpu = ppu; // ppu=true is invalid and will be skipped
        return cfg;
      }
      case Dataflow::kOutputStationary:
        return systolicOs(ppu);
      case Dataflow::kOuterProduct:
        return divaDefault(ppu);
    }
    return {};
}

enum class CliMode
{
    kSweep,
    kEnergy,
    kTenant,
    kDuration,
    kTrace,
};

struct Args
{
    std::vector<std::string> models = {"ResNet-50", "BERT-base"};
    std::vector<int> scales = {0};
    std::vector<Dataflow> dataflows = {Dataflow::kWeightStationary,
                                       Dataflow::kOutputStationary,
                                       Dataflow::kOuterProduct};
    std::vector<bool> ppus = {false, true};
    std::vector<TrainingAlgorithm> algos = {TrainingAlgorithm::kDpSgd,
                                            TrainingAlgorithm::kDpSgdR};
    std::vector<int> batches = {kAutoBatch, 32, 64};
    std::vector<int> microbatches = {0};
    std::vector<int> chips;
    std::vector<double> iciGbs;
    std::vector<int> linkLatencies;
    std::vector<GpuConfig> gpus;
    /** Registry names from --backends; empty = infer from the axes. */
    std::vector<std::string> backendNames;
    std::vector<Objective> pareto;
    int threads = 1;
    bool quiet = false;
    bool planCache = true;
    bool speedupTable = true;
    CliMode mode = CliMode::kSweep;
    EnergyBudget budget;
    std::vector<SchedPolicy> policies = allPolicies();
    std::uint64_t steps = 32;
    double wallSec = 0.0;
    std::uint64_t quantum = 1;
    double arriveEvery = 0.0;
    std::string arrivalsSpec;
    std::string tracePath;
    std::vector<double> loads = {1.0};
    bool admission = false;
    double admissionCap = 1.0;
    std::string cacheDir;
    std::string csvPath;
    std::string jsonPath;
    bool verbose = false;
    obs::CliObs obs;
};

/** Shared int parsing with this tool's one-line error report. */
std::optional<int>
parseInt(const std::string &flag, const std::string &text)
{
    const std::optional<long long> value = cli::parseIntText(text);
    if (value && *value >= INT_MIN && *value <= INT_MAX)
        return int(*value);
    std::cerr << "diva_sweep: " << flag << " expects an integer, got '"
              << text << "'\n";
    return std::nullopt;
}

/** Shared finite-double parsing with this tool's error report. */
std::optional<double>
parseDouble(const std::string &flag, const std::string &text)
{
    const std::optional<double> value = cli::parseDoubleText(text);
    if (value)
        return value;
    std::cerr << "diva_sweep: " << flag << " expects a number, got '"
              << text << "'\n";
    return std::nullopt;
}

bool
parseArgs(int argc, char **argv, Args &args)
{
    auto need = [&](int &i) -> std::optional<std::string> {
        if (i + 1 >= argc) {
            std::cerr << "diva_sweep: " << argv[i]
                      << " needs a value\n";
            return std::nullopt;
        }
        return std::string(argv[++i]);
    };
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        std::optional<std::string> v;
        if (a == "--help" || a == "-h") {
            usage();
            std::exit(0);
        } else if (a == "--list-models") {
            for (const std::string &m : knownModels())
                std::cout << m << "\n";
            std::exit(0);
        } else if (a == "--quiet") {
            args.quiet = true;
        } else if (a == "--no-plan-cache") {
            args.planCache = false;
        } else if (a == "--no-speedup") {
            args.speedupTable = false;
        } else if (a == "--models") {
            if (!(v = need(i)))
                return false;
            args.models = splitList(*v);
            const std::vector<std::string> zoo = knownModels();
            for (const std::string &m : args.models)
                if (std::find(zoo.begin(), zoo.end(), m) == zoo.end()) {
                    std::cerr << "diva_sweep: unknown model '" << m
                              << "'; see --list-models\n";
                    return false;
                }
        } else if (a == "--scales") {
            if (!(v = need(i)))
                return false;
            args.scales.clear();
            for (const std::string &s : splitList(*v)) {
                const auto n = parseInt(a, s);
                if (!n)
                    return false;
                args.scales.push_back(*n);
            }
        } else if (a == "--dataflows") {
            if (!(v = need(i)))
                return false;
            args.dataflows.clear();
            for (const std::string &s : splitList(*v)) {
                if (s == "WS")
                    args.dataflows.push_back(
                        Dataflow::kWeightStationary);
                else if (s == "OS")
                    args.dataflows.push_back(
                        Dataflow::kOutputStationary);
                else if (s == "DiVa")
                    args.dataflows.push_back(Dataflow::kOuterProduct);
                else {
                    std::cerr << "diva_sweep: unknown dataflow '" << s
                              << "'\n";
                    return false;
                }
            }
        } else if (a == "--ppu") {
            if (!(v = need(i)))
                return false;
            args.ppus.clear();
            for (const std::string &s : splitList(*v)) {
                if (s == "off")
                    args.ppus.push_back(false);
                else if (s == "on")
                    args.ppus.push_back(true);
                else {
                    std::cerr << "diva_sweep: --ppu takes off/on\n";
                    return false;
                }
            }
        } else if (a == "--algos") {
            if (!(v = need(i)))
                return false;
            args.algos.clear();
            for (const std::string &s : splitList(*v)) {
                const auto algo = parseAlgo(s);
                if (!algo) {
                    std::cerr << "diva_sweep: unknown algorithm '" << s
                              << "'\n";
                    return false;
                }
                args.algos.push_back(*algo);
            }
        } else if (a == "--batches") {
            if (!(v = need(i)))
                return false;
            args.batches.clear();
            for (const std::string &s : splitList(*v)) {
                if (s == "auto") {
                    args.batches.push_back(kAutoBatch);
                    continue;
                }
                const auto n = parseInt(a, s);
                if (!n)
                    return false;
                args.batches.push_back(*n);
            }
        } else if (a == "--microbatches") {
            if (!(v = need(i)))
                return false;
            args.microbatches.clear();
            for (const std::string &s : splitList(*v)) {
                const auto n = parseInt(a, s);
                if (!n)
                    return false;
                args.microbatches.push_back(*n);
            }
        } else if (a == "--chips") {
            if (!(v = need(i)))
                return false;
            for (const std::string &s : splitList(*v)) {
                const auto n = parseInt(a, s);
                if (!n)
                    return false;
                if (*n < 1) {
                    std::cerr << "diva_sweep: --chips must be >= 1\n";
                    return false;
                }
                args.chips.push_back(*n);
            }
        } else if (a == "--ici-gbs") {
            if (!(v = need(i)))
                return false;
            for (const std::string &s : splitList(*v)) {
                const auto n = parseDouble(a, s);
                if (!n)
                    return false;
                if (*n <= 0.0) {
                    std::cerr << "diva_sweep: --ici-gbs must be > 0\n";
                    return false;
                }
                args.iciGbs.push_back(*n);
            }
        } else if (a == "--link-lat") {
            if (!(v = need(i)))
                return false;
            for (const std::string &s : splitList(*v)) {
                const auto n = parseInt(a, s);
                if (!n)
                    return false;
                if (*n < 0) {
                    std::cerr << "diva_sweep: --link-lat must be >= 0\n";
                    return false;
                }
                args.linkLatencies.push_back(*n);
            }
        } else if (a == "--gpus") {
            if (!(v = need(i)))
                return false;
            for (const std::string &s : splitList(*v)) {
                const auto gpu = parseGpu(s);
                if (!gpu) {
                    std::cerr << "diva_sweep: unknown GPU '" << s
                              << "'\n";
                    return false;
                }
                args.gpus.push_back(*gpu);
            }
        } else if (a == "--backends") {
            if (!(v = need(i)))
                return false;
            const auto names = cli::parseBackendList("diva_sweep", *v);
            if (!names)
                return false;
            args.backendNames = *names;
        } else if (a == "--pareto") {
            if (!(v = need(i)))
                return false;
            for (const std::string &s : splitList(*v)) {
                const auto obj = objectiveFromName(s);
                if (!obj) {
                    std::cerr << "diva_sweep: unknown objective '" << s
                              << "'\n";
                    return false;
                }
                args.pareto.push_back(*obj);
            }
        } else if (a == "--threads") {
            if (!(v = need(i)))
                return false;
            const auto n = parseInt(a, *v);
            if (!n)
                return false;
            args.threads = *n;
        } else if (a == "--mode") {
            if (!(v = need(i)))
                return false;
            if (*v == "sweep")
                args.mode = CliMode::kSweep;
            else if (*v == "energy")
                args.mode = CliMode::kEnergy;
            else if (*v == "tenant")
                args.mode = CliMode::kTenant;
            else if (*v == "duration")
                args.mode = CliMode::kDuration;
            else if (*v == "trace")
                args.mode = CliMode::kTrace;
            else {
                std::cerr << "diva_sweep: --mode takes sweep, energy, "
                             "tenant, duration, or trace; got '" << *v
                          << "'\n";
                return false;
            }
        } else if (a == "--policies") {
            if (!(v = need(i)))
                return false;
            args.policies.clear();
            if (*v == "all") {
                args.policies = allPolicies();
            } else {
                for (const std::string &s : splitList(*v)) {
                    const auto p = policyFromName(s);
                    if (!p) {
                        std::cerr << "diva_sweep: unknown policy '" << s
                                  << "' (want fifo, rr, prio, or edf)\n";
                        return false;
                    }
                    args.policies.push_back(*p);
                }
            }
            if (args.policies.empty()) {
                std::cerr
                    << "diva_sweep: --policies needs at least one\n";
                return false;
            }
        } else if (a == "--steps") {
            if (!(v = need(i)))
                return false;
            const auto n = parseInt(a, *v);
            if (!n)
                return false;
            if (*n < 1) {
                std::cerr << "diva_sweep: --steps must be >= 1\n";
                return false;
            }
            args.steps = std::uint64_t(*n);
        } else if (a == "--wall-s") {
            if (!(v = need(i)))
                return false;
            const auto n = parseDouble(a, *v);
            if (!n)
                return false;
            if (*n <= 0.0) {
                std::cerr << "diva_sweep: --wall-s must be > 0\n";
                return false;
            }
            args.wallSec = *n;
        } else if (a == "--quantum") {
            if (!(v = need(i)))
                return false;
            const auto n = parseInt(a, *v);
            if (!n)
                return false;
            if (*n < 1) {
                std::cerr << "diva_sweep: --quantum must be >= 1\n";
                return false;
            }
            args.quantum = std::uint64_t(*n);
        } else if (a == "--arrive-every") {
            if (!(v = need(i)))
                return false;
            const auto n = parseDouble(a, *v);
            if (!n)
                return false;
            if (*n < 0.0) {
                std::cerr << "diva_sweep: --arrive-every must be >= 0\n";
                return false;
            }
            args.arriveEvery = *n;
        } else if (a == "--arrivals") {
            if (!(v = need(i)))
                return false;
            args.arrivalsSpec = *v;
        } else if (a == "--trace") {
            if (!(v = need(i)))
                return false;
            args.tracePath = *v;
        } else if (a == "--loads") {
            if (!(v = need(i)))
                return false;
            args.loads.clear();
            for (const std::string &s : splitList(*v)) {
                const auto n = parseDouble(a, s);
                if (!n)
                    return false;
                if (*n <= 0.0) {
                    std::cerr << "diva_sweep: --loads must be > 0\n";
                    return false;
                }
                args.loads.push_back(*n);
            }
            if (args.loads.empty()) {
                std::cerr << "diva_sweep: --loads needs at least one\n";
                return false;
            }
        } else if (a == "--admission") {
            args.admission = true;
        } else if (a == "--admission-cap") {
            if (!(v = need(i)))
                return false;
            const auto n = parseDouble(a, *v);
            if (!n)
                return false;
            if (*n <= 0.0) {
                std::cerr << "diva_sweep: --admission-cap must be > 0\n";
                return false;
            }
            args.admissionCap = *n;
        } else if (a == "--budget-j") {
            if (!(v = need(i)))
                return false;
            const auto n = parseDouble(a, *v);
            if (!n)
                return false;
            if (*n <= 0.0) {
                std::cerr << "diva_sweep: --budget-j must be > 0\n";
                return false;
            }
            args.budget.maxJoulesPerIteration = *n;
        } else if (a == "--budget-w") {
            if (!(v = need(i)))
                return false;
            const auto n = parseDouble(a, *v);
            if (!n)
                return false;
            if (*n <= 0.0) {
                std::cerr << "diva_sweep: --budget-w must be > 0\n";
                return false;
            }
            args.budget.maxPowerW = *n;
        } else if (a == "--cache-dir") {
            if (!(v = need(i)))
                return false;
            args.cacheDir = *v;
        } else if (a == "--cache") {
            args.cacheDir = DiskCache::defaultDir();
        } else if (a == "--csv") {
            if (!(v = need(i)))
                return false;
            args.csvPath = *v;
        } else if (a == "--json") {
            if (!(v = need(i)))
                return false;
            args.jsonPath = *v;
        } else if (a == "--metrics-out") {
            if (!(v = need(i)))
                return false;
            args.obs.metricsOut = *v;
        } else if (a == "--trace-out") {
            if (!(v = need(i)))
                return false;
            args.obs.traceOut = *v;
        } else if (a == "--trace-max-events") {
            if (!(v = need(i)))
                return false;
            const auto n = parseInt(a, *v);
            if (!n)
                return false;
            if (*n < 1) {
                std::cerr << "diva_sweep: --trace-max-events must be "
                             ">= 1, got '" << *v << "'\n";
                return false;
            }
            args.obs.traceMaxEvents = std::size_t(*n);
        } else if (a == "--timeseries-out") {
            if (!(v = need(i)))
                return false;
            args.obs.timeseriesOut = *v;
        } else if (a == "--obs-window-s") {
            if (!(v = need(i)))
                return false;
            const auto n = parseDouble(a, *v);
            if (!n)
                return false;
            if (*n <= 0.0) {
                std::cerr << "diva_sweep: --obs-window-s must be "
                             "> 0\n";
                return false;
            }
            args.obs.obsWindowSec = *n;
        } else if (a == "--slo-p99-s") {
            if (!(v = need(i)))
                return false;
            args.obs.sloSpecText = *v;
        } else if (a == "--profile") {
            args.obs.profile = true;
        } else if (a == "--verbose") {
            args.verbose = true;
        } else {
            std::cerr << "diva_sweep: unknown option '" << a << "'\n";
            usage();
            return false;
        }
    }
    if (args.mode == CliMode::kDuration && args.wallSec <= 0.0) {
        std::cerr << "diva_sweep: --mode duration needs --wall-s\n";
        return false;
    }
    if (args.mode == CliMode::kTrace && args.arrivalsSpec.empty() &&
        args.tracePath.empty()) {
        std::cerr << "diva_sweep: --mode trace needs --arrivals or "
                     "--trace\n";
        return false;
    }
    if (!args.arrivalsSpec.empty() && !args.tracePath.empty()) {
        std::cerr << "diva_sweep: --arrivals and --trace are mutually "
                     "exclusive\n";
        return false;
    }
    if (!args.tracePath.empty() &&
        (args.loads.size() != 1 || args.loads[0] != 1.0)) {
        std::cerr << "diva_sweep: --loads scales the --arrivals "
                     "generator; recorded traces replay as-is\n";
        return false;
    }
    if (args.models.empty()) {
        std::cerr << "diva_sweep: --models needs at least one model\n";
        return false;
    }
    if (args.batches.empty()) {
        std::cerr << "diva_sweep: --batches needs at least one batch\n";
        return false;
    }
    if (args.algos.empty()) {
        std::cerr << "diva_sweep: --algos needs at least one\n";
        return false;
    }
    if (args.scales.empty()) {
        std::cerr << "diva_sweep: --scales needs at least one scale\n";
        return false;
    }
    if (args.microbatches.empty()) {
        std::cerr << "diva_sweep: --microbatches needs at least one\n";
        return false;
    }
    if (args.dataflows.empty() || args.ppus.empty()) {
        std::cerr << "diva_sweep: --dataflows/--ppu need at least one "
                     "entry\n";
        return false;
    }
    return true;
}

SweepSpec
buildSpec(const Args &args)
{
    SweepSpec spec;
    for (Dataflow df : args.dataflows)
        for (bool ppu : args.ppus)
            spec.configs.push_back(configFor(df, ppu));
    spec.models = args.models;
    spec.modelScales = args.scales;
    spec.algorithms = args.algos;
    spec.batches = args.batches;
    spec.microbatches = args.microbatches;

    // The backend axis: --backends names resolved through the
    // registry (carried by name so non-built-in backends work), or
    // (without the flag) chip plus whatever backends the pod/GPU axes
    // imply. spec.backends always holds the kinds: the pod/GPU axis
    // decisions below and the speedup-table gating read them.
    spec.backends.clear();
    if (args.backendNames.empty()) {
        spec.backends = {SweepBackend::kSingleChip};
        if (!args.chips.empty() || !args.iciGbs.empty() ||
            !args.linkLatencies.empty())
            spec.backends.push_back(SweepBackend::kMultiChip);
        if (!args.gpus.empty())
            spec.backends.push_back(SweepBackend::kGpu);
    } else {
        spec.backendNames = args.backendNames;
        for (const std::string &name : args.backendNames)
            spec.backends.push_back(
                BackendRegistry::instance().find(name)->kind());
    }
    const auto has_backend = [&](SweepBackend b) {
        return std::find(spec.backends.begin(), spec.backends.end(),
                         b) != spec.backends.end();
    };
    // An explicit --backends list wins over implied axes, but never
    // silently: a sweep missing points the user spelled out reads as
    // complete when it is not.
    if (!args.backendNames.empty()) {
        if (!has_backend(SweepBackend::kMultiChip) &&
            (!args.chips.empty() || !args.iciGbs.empty() ||
             !args.linkLatencies.empty()))
            std::cerr << "diva_sweep: warning: --chips/--ici-gbs/"
                         "--link-lat ignored ('pod' is not in "
                         "--backends)\n";
        if (!has_backend(SweepBackend::kGpu) && !args.gpus.empty())
            std::cerr << "diva_sweep: warning: --gpus ignored ('gpu' "
                         "is not in --backends)\n";
    }

    // Pod shape axis; unspecified axes fall back to the
    // MultiChipConfig defaults (8 chips, TPUv3-class links).
    if (has_backend(SweepBackend::kMultiChip)) {
        const MultiChipConfig defaults;
        const std::vector<int> chip_axis =
            args.chips.empty() ? std::vector<int>{defaults.numChips}
                               : args.chips;
        const std::vector<double> ici_axis =
            args.iciGbs.empty()
                ? std::vector<double>{defaults.interconnectGBs}
                : args.iciGbs;
        const std::vector<int> lat_axis =
            args.linkLatencies.empty()
                ? std::vector<int>{int(defaults.linkLatencyCycles)}
                : args.linkLatencies;
        for (int n : chip_axis)
            for (double ici : ici_axis)
                for (int lat : lat_axis) {
                    MultiChipConfig pod;
                    pod.numChips = n;
                    pod.interconnectGBs = ici;
                    pod.linkLatencyCycles = Cycles(lat);
                    spec.pods.push_back(pod);
                }
    }
    if (has_backend(SweepBackend::kGpu))
        // --backends gpu without --gpus sweeps the paper's four
        // design points.
        spec.gpus = args.gpus.empty()
                        ? std::vector<GpuConfig>{GpuConfig::v100Fp32(),
                                                 GpuConfig::v100Fp16(),
                                                 GpuConfig::a100Fp32(),
                                                 GpuConfig::a100Fp16()}
                        : args.gpus;
    return spec;
}

/** Fig.13-style table: per workload row, speedup of every design point
 *  over the WS baseline swept up front. */
void
printSpeedupTable(std::ostream &os,
                  const std::vector<ScenarioResult> &baseline,
                  const std::vector<ScenarioResult> &results)
{
    // Workload key -> WS cycles.
    auto workloadKey = [](const ScenarioResult &r) {
        std::ostringstream oss;
        oss << r.scenario.model << '|' << r.scenario.modelScale << '|'
            << algorithmName(r.scenario.algorithm) << '|'
            << r.resolvedBatch << '|' << r.scenario.microbatch;
        return oss.str();
    };
    std::map<std::string, Cycles> ws;
    for (const ScenarioResult &r : baseline)
        if (r.ok())
            ws[workloadKey(r)] = r.cycles;

    // Column per design point, in first-seen order.
    std::vector<std::string> cfgs;
    for (const ScenarioResult &r : results) {
        if (r.scenario.backend != SweepBackend::kSingleChip)
            continue;
        const std::string &name = r.scenario.config.name;
        if (std::find(cfgs.begin(), cfgs.end(), name) == cfgs.end())
            cfgs.push_back(name);
    }

    std::vector<std::string> header = {"model", "algorithm", "batch"};
    for (const std::string &c : cfgs)
        header.push_back(c + " vs WS");
    TextTable table(header);

    std::map<std::string, std::map<std::string, double>> rows;
    std::vector<std::string> row_order;
    for (const ScenarioResult &r : results) {
        if (!r.ok() || r.scenario.backend != SweepBackend::kSingleChip)
            continue;
        const auto it = ws.find(workloadKey(r));
        if (it == ws.end() || r.cycles == 0)
            continue;
        const std::string key = workloadKey(r);
        if (!rows.count(key))
            row_order.push_back(key);
        rows[key][r.scenario.config.name] =
            double(it->second) / double(r.cycles);
    }
    for (const std::string &key : row_order) {
        std::stringstream ss(key);
        std::string model, scale, algo, batch, microbatch;
        std::getline(ss, model, '|');
        std::getline(ss, scale, '|');
        std::getline(ss, algo, '|');
        std::getline(ss, batch, '|');
        std::getline(ss, microbatch, '|');
        std::vector<std::string> cells = {
            scale == "0" ? model : model + "@" + scale, algo, batch};
        for (const std::string &c : cfgs) {
            const auto it = rows[key].find(c);
            cells.push_back(it == rows[key].end()
                                ? std::string("-")
                                : TextTable::fmtX(it->second));
        }
        table.addRow(cells);
    }
    os << "=== speedup vs Systolic-WS (Fig. 13 protocol) ===\n";
    table.print(os);
}

void
printPareto(std::ostream &os, const std::vector<ScenarioResult> &results,
            const std::vector<Objective> &objectives)
{
    const std::vector<std::size_t> frontier =
        paretoFrontier(results, objectives);
    std::vector<std::string> header = {"scenario"};
    for (Objective o : objectives)
        header.push_back(objectiveName(o));
    TextTable table(header);
    for (std::size_t i : frontier) {
        std::vector<std::string> cells = {results[i].scenario.label()};
        for (Objective o : objectives) {
            const double v = objectiveValue(results[i], o);
            const bool integral = o == Objective::kCycles ||
                                  o == Objective::kDramBytes;
            cells.push_back(integral
                                ? std::to_string(std::uint64_t(v))
                                : formatDouble(v));
        }
        table.addRow(cells);
    }
    os << "=== Pareto frontier (" << frontier.size() << " of "
       << results.size() << " scenarios) ===\n";
    table.print(os);
}

/** Energy-constrained search report: the best-throughput config under
 *  the budget plus the feasible latency/energy trade-off curve. */
void
printEnergySearch(std::ostream &os,
                  const std::vector<ScenarioResult> &results,
                  const EnergyBudget &budget)
{
    const EnergySearchResult search =
        energyConstrainedSearch(results, budget);

    os << "=== energy-constrained search ===\n";
    os << "budget:";
    if (std::isfinite(budget.maxJoulesPerIteration))
        os << " <= " << formatDouble(budget.maxJoulesPerIteration)
           << " J/iteration";
    if (std::isfinite(budget.maxPowerW))
        os << " <= " << formatDouble(budget.maxPowerW) << " W";
    if (!std::isfinite(budget.maxJoulesPerIteration) &&
        !std::isfinite(budget.maxPowerW))
        os << " none (pass --budget-j and/or --budget-w)";
    os << "\nfeasible: " << search.feasible.size() << " of "
       << results.size() << " scenarios\n";

    if (!search.best) {
        os << "best: none (no successful scenario fits the budget)\n";
        return;
    }
    const ScenarioResult &best = results[*search.best];
    os << "best: " << best.scenario.label() << "\n"
       << "  throughput: "
       << formatDouble(throughputExamplesPerSec(best)) << " examples/s"
       << "  seconds: " << formatDouble(best.seconds)
       << "  energy_j: " << formatDouble(best.energyJ)
       << "  power_w: " << formatDouble(best.enginePowerW) << "\n";

    TextTable table(
        {"scenario", "examples/s", "seconds", "energy_j", "power_w"});
    for (std::size_t i : search.frontier)
        table.addRow({results[i].scenario.label(),
                      formatDouble(throughputExamplesPerSec(results[i])),
                      formatDouble(results[i].seconds),
                      formatDouble(results[i].energyJ),
                      formatDouble(results[i].enginePowerW)});
    os << "feasible Pareto frontier (seconds vs energy, "
       << search.frontier.size() << " scenarios):\n";
    table.print(os);
}

/** One point of the serve-platform axis. */
struct Platform
{
    AcceleratorConfig config;
    int chips = 1;
    MultiChipConfig pod;
};

/**
 * Platform axis shared by the tenant/duration/trace modes: every
 * valid (dataflow, ppu) design point on one chip, plus every pod
 * shape when a pod axis was given. Empty (after a stderr message)
 * when no design point is valid.
 */
std::vector<Platform>
platformAxis(const Args &args)
{
    std::vector<Platform> platforms;
    for (Dataflow df : args.dataflows)
        for (bool ppu : args.ppus) {
            const AcceleratorConfig cfg = configFor(df, ppu);
            if (!cfg.validationError().empty())
                continue; // e.g. WS+PPU, same skip rule as the sweep
            platforms.push_back({cfg, 1, {}});
        }
    if (platforms.empty()) {
        std::cerr << "diva_sweep: no valid accelerator design points\n";
        return platforms;
    }
    if (!args.chips.empty() || !args.iciGbs.empty() ||
        !args.linkLatencies.empty()) {
        const MultiChipConfig defaults;
        const std::vector<int> chip_axis =
            args.chips.empty() ? std::vector<int>{defaults.numChips}
                               : args.chips;
        const std::vector<double> ici_axis =
            args.iciGbs.empty()
                ? std::vector<double>{defaults.interconnectGBs}
                : args.iciGbs;
        const std::vector<int> lat_axis =
            args.linkLatencies.empty()
                ? std::vector<int>{int(defaults.linkLatencyCycles)}
                : args.linkLatencies;
        const std::size_t single_chip = platforms.size();
        for (std::size_t p = 0; p < single_chip; ++p)
            for (int n : chip_axis) {
                // chips=1 has no interconnect and is already covered
                // by the single-chip platforms above.
                if (n <= 1)
                    continue;
                for (double ici : ici_axis)
                    for (int lat : lat_axis) {
                        Platform pod = platforms[p];
                        pod.chips = n;
                        pod.pod.numChips = n;
                        pod.pod.interconnectGBs = ici;
                        pod.pod.linkLatencyCycles = Cycles(lat);
                        platforms.push_back(pod);
                    }
            }
    }
    return platforms;
}

/** Emit serves to --csv/--json (or stdout); false on I/O failure. */
bool
emitServes(const Args &args, const std::vector<ServeResult> &serves)
{
    obs::ScopedPhase emit_phase("emit");
    std::ofstream csv_file;
    if (!args.csvPath.empty()) {
        csv_file.open(args.csvPath);
        if (!csv_file) {
            std::cerr << "diva_sweep: cannot write " << args.csvPath
                      << "\n";
            return false;
        }
    }
    std::ostream &csv = args.csvPath.empty() ? std::cout : csv_file;
    writeServeCsv(csv, serves);

    if (!args.jsonPath.empty()) {
        std::ofstream json_file(args.jsonPath);
        if (!json_file) {
            std::cerr << "diva_sweep: cannot write " << args.jsonPath
                      << "\n";
            return false;
        }
        writeServeJson(json_file, serves);
    }
    return true;
}

/**
 * Tenant / duration modes: one tenant per --models entry, fair-share
 * QoS targets, served under every policy on every valid accelerator
 * design point (plus any pod axis points). The per-tenant isolated
 * costs run through the shared SweepRunner, so they are parallel,
 * deduplicated across policies, and disk-cacheable like any other
 * scenario.
 */
int
runTenantModes(const Args &args, SweepRunner &runner)
{
    const bool duration = args.mode == CliMode::kDuration;

    TenantWorkload mix;
    {
        std::ostringstream oss;
        oss << (duration ? "duration-" : "tenant-") << args.models.size();
        mix.name = oss.str();
    }
    for (std::size_t i = 0; i < args.models.size(); ++i) {
        TenantJob job;
        job.model = args.models[i];
        std::ostringstream name;
        name << "t" << i << ":" << job.model;
        job.name = name.str();
        job.batch = args.batches.front();
        job.algorithm = args.algos.front();
        job.modelScale = args.scales.front();
        job.microbatch = args.microbatches.front();
        job.steps = duration ? 0 : args.steps;
        job.arrivalSec = args.arriveEvery * double(i);
        job.priority = int(i % 3);
        mix.jobs.push_back(std::move(job));
    }

    const std::vector<Platform> platforms = platformAxis(args);
    if (platforms.empty())
        return 1;

    std::vector<ServeResult> serves;
    std::size_t failures = 0;
    int cell = 0;
    for (const Platform &p : platforms)
        for (SchedPolicy policy : args.policies) {
            ServeSpec spec;
            spec.workload = mix;
            spec.config = p.config;
            spec.chips = p.chips;
            spec.pod = p.pod;
            spec.backends = args.backendNames;
            spec.policy = policy;
            spec.opts.quantumIters = args.quantum;
            spec.opts.wallLimitSec = args.wallSec;
            spec.opts.autoQosFairShare = true;
            // One telemetry bundle across all cells; the serve loop
            // prefixes its series "serve.<policy>.", and per-tenant
            // names embed the model, so cells never collide.
            spec.opts.telemetry = args.obs.telemetry.get();
            // One track per (platform, policy) cell: each serve loop
            // is sequential, so every track has a single writer.
            if (args.obs.sink)
                spec.opts.traceTrack = args.obs.sink->track(
                    cell++, p.config.name + " " + policyName(policy));
            if (!args.quiet)
                std::cerr << "serving " << mix.jobs.size()
                          << " tenant(s) under " << policyName(policy)
                          << " on " << p.config.name
                          << (p.chips > 1
                                  ? " x" + std::to_string(p.chips)
                                  : "")
                          << "...\n";
            ServeResult r = simulateServe(spec, runner);
            if (!r.ok()) {
                std::cerr << "diva_sweep: " << policyName(policy)
                          << " on " << p.config.name << ": " << r.error
                          << "\n";
                ++failures;
            }
            serves.push_back(std::move(r));
        }

    if (!emitServes(args, serves))
        return 1;

    // Policy comparison per platform: the serve-mode counterpart of
    // the Fig.13 speedup table (cache accounting stays on stderr so
    // stdout is a pure function of the serve specs).
    std::cout << "\n=== " << (duration ? "duration" : "tenant")
              << " serve summary ===\n"
              << "serves: " << serves.size() << " ("
              << platforms.size() << " platform(s) x "
              << args.policies.size() << " policy(ies)), tenants per "
              << "serve: " << mix.jobs.size() << "\n"
              << "failures: " << failures << "\n";
    TextTable table({"config", "chips", "policy",
                     duration ? "steps_done" : "makespan_s",
                     "mean_qos_pct", "switches", "switch_s",
                     "energy_j"});
    for (const ServeResult &s : serves) {
        if (!s.ok())
            continue;
        std::uint64_t total_steps = 0;
        for (const TenantMetrics &t : s.tenants)
            total_steps += t.stepsDone;
        table.addRow({s.configName, std::to_string(s.chips),
                      policyName(s.policy),
                      duration ? std::to_string(total_steps)
                               : formatDouble(s.makespanSec),
                      formatDouble(s.meanQosAttainmentPct),
                      std::to_string(s.contextSwitches),
                      formatDouble(s.switchSec),
                      formatDouble(s.totalEnergyJ)});
    }
    table.print(std::cout);
    return failures == 0 ? 0 : 2;
}

/**
 * Trace mode: open-loop arrival replay swept over policy x config
 * (x pod shape) x load. Loads scale the --arrivals generator's rate
 * (same seed, so a load sweep is an apples-to-apples burst-intensity
 * study); a recorded --trace file replays as-is. Isolated costs run
 * through the shared SweepRunner, so every (model, batch, algorithm)
 * prices once across the whole sweep and lands in the disk cache.
 */
int
runTraceMode(const Args &args, SweepRunner &runner)
{
    // Resolve the traces of the load axis up front so a bad spec or
    // file fails before any simulation.
    std::vector<ArrivalTrace> traces;
    if (!args.tracePath.empty()) {
        std::string err;
        traces.push_back(loadTraceFile(args.tracePath, &err));
        if (!err.empty()) {
            std::cerr << "diva_sweep: --trace: " << err << "\n";
            return 1;
        }
    } else {
        std::string err;
        const auto base = parseTraceGenSpec(args.arrivalsSpec, &err);
        if (!base) {
            std::cerr << "diva_sweep: --arrivals: " << err << "\n";
            return 1;
        }
        for (double load : args.loads) {
            TraceGenSpec gen = *base;
            gen.ratePerSec = base->ratePerSec * load;
            if (!gen.stepsSet)
                gen.steps = args.steps;
            ArrivalTrace t = generateTrace(gen);
            if (t.jobs.empty()) {
                std::cerr << "diva_sweep: --arrivals at load "
                          << formatDouble(load)
                          << " produced no arrivals; raise rate or "
                             "horizon\n";
                return 1;
            }
            traces.push_back(std::move(t));
        }
    }

    const std::vector<Platform> platforms = platformAxis(args);
    if (platforms.empty())
        return 1;

    AdmissionOptions admission;
    admission.utilizationCap = args.admissionCap;

    std::vector<ServeResult> serves;
    std::size_t failures = 0;
    int cell = 0;
    for (const ArrivalTrace &trace : traces) {
        // One ReplaySpec per trace: the (possibly large) session list
        // is copied in once, and only the platform/policy fields
        // change per cell.
        ReplaySpec rs;
        rs.trace = trace;
        rs.backends = args.backendNames;
        rs.opts.quantumIters = args.quantum;
        rs.opts.wallLimitSec = args.wallSec;
        // Shared telemetry bundle: replay cells run sequentially and
        // the serve loop prefixes its series "serve.<policy>.".
        rs.opts.telemetry = args.obs.telemetry.get();
        rs.admission = args.admission;
        rs.admissionOpts = admission;
        for (const Platform &p : platforms)
            for (SchedPolicy policy : args.policies) {
                rs.config = p.config;
                rs.chips = p.chips;
                rs.pod = p.pod;
                rs.policy = policy;
                // One track per replay cell (single-writer: replays
                // run sequentially here).
                if (args.obs.sink)
                    rs.opts.traceTrack = args.obs.sink->track(
                        cell++, trace.name + " " + p.config.name + " " +
                                    policyName(policy));
                if (!args.quiet)
                    std::cerr << "replaying '" << trace.name << "' ("
                              << trace.jobs.size() << " session(s)) "
                              << "under " << policyName(policy)
                              << " on " << p.config.name
                              << (p.chips > 1
                                      ? " x" + std::to_string(p.chips)
                                      : "")
                              << "...\n";
                ServeResult r = replayTrace(rs, runner);
                if (!r.ok()) {
                    std::cerr << "diva_sweep: " << policyName(policy)
                              << " on " << p.config.name << ": "
                              << r.error << "\n";
                    ++failures;
                }
                serves.push_back(std::move(r));
            }
    }

    if (!emitServes(args, serves))
        return 1;

    // Tail-latency comparison across the axes (cache accounting stays
    // on stderr so stdout is a pure function of the replay specs).
    std::cout << "\n=== trace serve summary ===\n"
              << "replays: " << serves.size() << " (" << traces.size()
              << " trace(s) x " << platforms.size()
              << " platform(s) x " << args.policies.size()
              << " policy(ies))\n"
              << "failures: " << failures << "\n";
    TextTable table({"trace", "config", "chips", "policy", "admitted",
                     "mean_qos_pct", "lat_p50_s", "lat_p95_s",
                     "lat_p99_s", "switches"});
    for (const ServeResult &s : serves) {
        if (!s.ok())
            continue;
        const std::size_t admitted = s.admittedCount();
        table.addRow({s.workloadName, s.configName,
                      std::to_string(s.chips), policyName(s.policy),
                      std::to_string(admitted) + "/" +
                          std::to_string(s.tenants.size()),
                      formatDouble(s.meanQosAttainmentPct),
                      formatDouble(s.aggStepLatency.p50Sec),
                      formatDouble(s.aggStepLatency.p95Sec),
                      formatDouble(s.aggStepLatency.p99Sec),
                      std::to_string(s.contextSwitches)});
    }
    table.print(std::cout);
    return failures == 0 ? 0 : 2;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args;
    if (!parseArgs(argc, argv, args))
        return 1;
    if (args.verbose)
        setLogVerbosity(LogVerbosity::kVerbose);
    if (!args.obs.activate())
        return 1;

    SweepOptions opts;
    opts.threads = args.threads;
    opts.planCache = args.planCache;
    opts.cacheDir = args.cacheDir;
    if (!args.quiet)
        opts.progress = [](std::size_t done, std::size_t total,
                           const Scenario &s) {
            std::cerr << "[" << done << "/" << total << "] "
                      << s.label() << "\n";
        };
    SweepRunner runner(opts);
    if (!args.quiet && runner.diskCache()) {
        const DiskCache &dc = *runner.diskCache();
        std::cerr << "disk cache: " << dc.size() << " entries in "
                  << dc.filePath();
        if (dc.corruptLinesSkipped())
            std::cerr << " (" << dc.corruptLinesSkipped()
                      << " corrupt lines skipped)";
        std::cerr << "\n";
    }

    if (args.mode == CliMode::kTenant ||
        args.mode == CliMode::kDuration) {
        const int rc = runTenantModes(args, runner);
        if (!args.obs.finish())
            return rc != 0 ? rc : 1;
        return rc;
    }
    if (args.mode == CliMode::kTrace) {
        const int rc = runTraceMode(args, runner);
        if (!args.obs.finish())
            return rc != 0 ? rc : 1;
        return rc;
    }

    const SweepSpec spec = buildSpec(args);
    const SweepSpec::Expansion expansion = spec.expand();

    // Baseline pass: the WS design point over the same workload axes,
    // so every speedup denominator exists. The main sweep re-meets
    // these scenarios and takes them from the cache.
    // The Fig.13 speedup table is sweep-mode furniture; energy mode
    // reports the budget search instead, and a --backends axis
    // without chip scenarios has no speedup columns to fill.
    const bool speedup_table =
        args.speedupTable && args.mode == CliMode::kSweep &&
        std::find(spec.backends.begin(), spec.backends.end(),
                  SweepBackend::kSingleChip) != spec.backends.end();
    SweepReport baseline;
    if (speedup_table) {
        SweepSpec base = spec;
        base.configs = {tpuV3Ws()};
        base.backends = {SweepBackend::kSingleChip};
        // expand() gives backendNames priority over backends; the
        // baseline is chip-only whatever axis the main sweep uses.
        base.backendNames = {"chip"};
        base.pods.clear();
        base.gpus.clear();
        if (!args.quiet)
            std::cerr << "sweeping WS baseline...\n";
        baseline = runner.run(base);
    }

    if (!args.quiet)
        std::cerr << "sweeping " << expansion.scenarios.size()
                  << " scenarios on " << args.threads << " thread(s)...\n";
    const SweepReport report = runner.run(expansion.scenarios);

    // Sweep scenarios have no arrival clock, so the trace lays the
    // per-iteration costs end to end on a synthetic time axis in
    // input (= output CSV) order: span k starts where span k-1 ends.
    if (args.obs.sink) {
        obs::TraceTrack *track = args.obs.sink->track(0, "scenarios");
        double t = 0.0;
        for (const ScenarioResult &r : report.results) {
            if (!r.ok())
                continue;
            track->span(t, t + r.seconds, r.scenario.label(),
                        "scenario");
            t += r.seconds;
        }
    }

    {
        obs::ScopedPhase emit_phase("emit");
        std::ofstream csv_file;
        if (!args.csvPath.empty()) {
            csv_file.open(args.csvPath);
            if (!csv_file) {
                std::cerr << "diva_sweep: cannot write " << args.csvPath
                          << "\n";
                return 1;
            }
        }
        std::ostream &csv = args.csvPath.empty() ? std::cout : csv_file;
        writeCsv(csv, report);

        if (!args.jsonPath.empty()) {
            std::ofstream json_file(args.jsonPath);
            if (!json_file) {
                std::cerr << "diva_sweep: cannot write "
                          << args.jsonPath << "\n";
                return 1;
            }
            writeJson(json_file, report);
        }
    }

    std::cout << "\n=== sweep summary ===\n"
              << "scenarios: " << report.results.size() << " (cartesian "
              << expansion.rawCount << ", invalid skipped "
              << expansion.invalidSkipped << ", duplicates removed "
              << expansion.duplicatesRemoved << ")\n"
              << "cache: " << report.cacheHits << " hits, "
              << report.cacheMisses << " misses\n"
              << "plan cache: " << report.planHits << " hits, "
              << report.planMisses << " misses\n"
              << "failures: " << report.failures << "\n";

    const SweepSummary stats = summarizeResults(report.results);
    TextTable summary({"metric", "min", "median", "p95", "max"});
    auto statRow = [&](const char *name, const SummaryStats &s,
                       bool integral) {
        summary.addRow(
            {name,
             integral ? std::to_string(std::uint64_t(s.min))
                      : formatDouble(s.min),
             integral ? std::to_string(std::uint64_t(s.median))
                      : formatDouble(s.median),
             integral ? std::to_string(std::uint64_t(s.p95))
                      : formatDouble(s.p95),
             integral ? std::to_string(std::uint64_t(s.max))
                      : formatDouble(s.max)});
    };
    statRow("cycles", stats.cycles, true);
    statRow("utilization", stats.utilization, false);
    statRow("energy (J)", stats.energyJ, false);
    summary.print(std::cout);
    std::cout << "\n";

    if (speedup_table) {
        printSpeedupTable(std::cout, baseline.results, report.results);
        std::cout << "\n";
    }
    if (args.mode == CliMode::kEnergy) {
        printEnergySearch(std::cout, report.results, args.budget);
        std::cout << "\n";
    }
    if (!args.pareto.empty()) {
        printPareto(std::cout, report.results, args.pareto);
        std::cout << "\n";
    }
    if (!args.obs.finish())
        return report.failures == 0 ? 1 : 2;
    return report.failures == 0 ? 0 : 2;
}
