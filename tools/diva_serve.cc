/**
 * @file
 * diva_serve: multi-tenant time-sharing serve simulator driver.
 *
 * Runs N tenant training jobs (generated with --tenants or spelled out
 * with repeated --tenant flags) time-sharing one accelerator (or pod)
 * under one or more scheduling policies, and reports per-tenant
 * achieved rate, slowdown vs. an isolated run, QoS attainment and
 * energy share plus the run-level context-switch bill.
 *
 * The per-tenant isolated iteration costs are ordinary sweep scenarios
 * run through the sweep engine, so --threads parallelizes them and
 * --cache-dir shares the persistent result cache with diva_sweep. All
 * serve output on stdout (or --csv/--json files) is a pure function of
 * the spec: --threads N and warm-cache reruns are byte-identical.
 * Progress and cache accounting go to stderr.
 */

#include <cmath>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "arrivals/generate.h"
#include "arrivals/replay.h"
#include "arrivals/trace.h"
#include "cli_parse.h"
#include "common/logging.h"
#include "common/table.h"
#include "obs/cli.h"
#include "obs/profile.h"
#include "sweep/disk_cache.h"
#include "sweep/emit.h"
#include "sweep/runner.h"
#include "tenant/emit.h"
#include "tenant/serve.h"

using namespace diva;

namespace
{

void
usage()
{
    std::cerr <<
        "usage: diva_serve [options]\n"
        "\n"
        "Tenant mix:\n"
        "  --tenants N         N generated tenants rotating through a\n"
        "                      fixed model mix (default 3)\n"
        "  --tenant SPEC       add an explicit tenant; SPEC is\n"
        "                      model[:batch[:qos_sps[:arrival_s[:prio\n"
        "                      [:steps[:depart_s]]]]]], e.g.\n"
        "                      ResNet-50:32:2.5:0:1:64 (batch 'auto' =\n"
        "                      largest that fits; depart_s 0 = stays)\n"
        "  --steps N           steps per generated tenant (default 32;\n"
        "                      0 = unbounded, needs --wall-s)\n"
        "  --batch N|auto      batch per generated tenant (default 8)\n"
        "  --arrive-every S    stagger generated arrivals (default 0)\n"
        "  --qos auto|none|R   generated tenants' steps/sec target:\n"
        "                      auto = fair share of the isolated rate\n"
        "                      (default), none, or an explicit rate\n"
        "\n"
        "Arrival traces (replace the static mix; open-loop replay):\n"
        "  --arrivals SPEC     generate a seeded arrival trace:\n"
        "                      kind[:key=val,...], kind poisson|onoff|\n"
        "                      diurnal, keys rate,horizon,seed,cap,on,\n"
        "                      off,peak,steps,batch,qos,hold,prios --\n"
        "                      e.g. poisson:rate=4,seed=7,hold=2\n"
        "  --trace FILE        replay a recorded trace (.csv, or\n"
        "                      .jsonl/.json with one object per line)\n"
        "  --save-trace PATH   write the replayed trace as canonical\n"
        "                      CSV (seeded generators: same seed =>\n"
        "                      byte-identical file)\n"
        "  --admission         run the QoS admission controller: shed\n"
        "                      tenants whose aggregate demand exceeds\n"
        "                      capacity (also works without a trace)\n"
        "  --admission-cap U   utilization the admitted QoS demand may\n"
        "                      claim (default 1.0)\n"
        "\n"
        "Scheduling:\n"
        "  --policy NAME       fifo, rr, prio, or edf (default rr)\n"
        "  --policies LIST     compare several policies in one run\n"
        "                      (or 'all')\n"
        "  --quantum N         iterations per scheduling quantum\n"
        "                      (default 1)\n"
        "  --wall-s S          wall-clock budget in simulated seconds;\n"
        "                      0 = run every tenant to completion\n"
        "\n"
        "Platform:\n"
        "  --dataflow NAME     WS, OS, or DiVa (default DiVa)\n"
        "  --ppu on|off        post-processing unit (default on;\n"
        "                      WS is always off)\n"
        "  --chips N           time-share a data-parallel pod of N\n"
        "                      chips (default 1)\n"
        "  --backends LIST     allowed isolated-cost backends by\n"
        "                      registry name (default: all); the serve\n"
        "                      prices tenants on 'pod' when --chips > 1,\n"
        "                      else 'chip'\n"
        "\n"
        "Execution:\n"
        "  --threads N         worker threads for the isolated-cost\n"
        "                      simulations (default 1)\n"
        "  --cache-dir PATH    persistent result cache shared with\n"
        "                      diva_sweep\n"
        "  --cache             like --cache-dir with the default dir\n"
        "  --quiet             no stderr progress\n"
        "\n"
        "Output (deterministic; independent of --threads and cache):\n"
        "  --csv PATH          write per-tenant CSV to PATH instead of\n"
        "                      stdout\n"
        "  --json PATH         also write a JSON report\n"
        "  --no-summary        skip the stdout summary tables\n"
        "\n" << obs::cliObsUsage();
}

struct Args
{
    int tenants = 3;
    std::vector<TenantJob> explicitTenants;
    std::string arrivalsSpec;
    std::string tracePath;
    std::string saveTracePath;
    bool admission = false;
    double admissionCap = 1.0;
    std::uint64_t steps = 32;
    int batch = 8;
    double arriveEvery = 0.0;
    enum class QosMode { kAuto, kNone, kRate } qosMode = QosMode::kAuto;
    double qosRate = 0.0;
    std::vector<SchedPolicy> policies = {SchedPolicy::kRoundRobin};
    std::uint64_t quantum = 1;
    double wallSec = 0.0;
    Dataflow dataflow = Dataflow::kOuterProduct;
    bool ppu = true;
    int chips = 1;
    std::vector<std::string> backends;
    int threads = 1;
    std::string cacheDir;
    bool quiet = false;
    bool summary = true;
    std::string csvPath;
    std::string jsonPath;
    bool verbose = false;
    obs::CliObs obs;
};

using cli::parseDoubleText;
using cli::parseIntText;

bool
fail(const std::string &msg)
{
    std::cerr << "diva_serve: " << msg << "\n";
    return false;
}

/** "Steps not given in the spec": resolved to --steps after parsing,
 *  so --tenant and --steps may appear in any order. */
constexpr std::uint64_t kStepsUnset = ~std::uint64_t(0);

/** model[:batch[:qos_sps[:arrival_s[:prio[:steps[:depart_s]]]]]] */
bool
parseTenantSpec(const std::string &spec, TenantJob &job)
{
    std::vector<std::string> f;
    std::stringstream ss(spec);
    for (std::string item; std::getline(ss, item, ':');)
        f.push_back(item);
    if (f.empty() || f.size() > 7 || f[0].empty())
        return fail("--tenant expects model[:batch[:qos_sps[:arrival_s"
                    "[:prio[:steps[:depart_s]]]]]], got '" + spec +
                    "'");
    job.model = f[0];
    job.steps = kStepsUnset;
    if (f.size() > 1) {
        if (f[1] == "auto") {
            job.batch = kAutoBatch;
        } else {
            const auto n = parseIntText(f[1]);
            if (!n || *n < 1)
                return fail("--tenant batch must be >= 1 or 'auto' in '" +
                            spec + "'");
            job.batch = int(*n);
        }
    }
    if (f.size() > 2) {
        const auto v = parseDoubleText(f[2]);
        if (!v || *v < 0.0)
            return fail("--tenant qos_sps must be >= 0 in '" + spec + "'");
        job.qosStepsPerSec = *v;
    }
    if (f.size() > 3) {
        const auto v = parseDoubleText(f[3]);
        if (!v || *v < 0.0)
            return fail("--tenant arrival_s must be >= 0 in '" + spec +
                        "'");
        job.arrivalSec = *v;
    }
    if (f.size() > 4) {
        const auto n = parseIntText(f[4]);
        if (!n)
            return fail("--tenant prio must be an integer in '" + spec +
                        "'");
        job.priority = int(*n);
    }
    if (f.size() > 5) {
        const auto n = parseIntText(f[5]);
        if (!n || *n < 0)
            return fail("--tenant steps must be >= 0 in '" + spec + "'");
        job.steps = std::uint64_t(*n);
    }
    if (f.size() > 6) {
        const auto v = parseDoubleText(f[6]);
        if (!v || *v < 0.0)
            return fail("--tenant depart_s must be >= 0 in '" + spec +
                        "'");
        job.departSec = *v;
    }
    return true;
}

bool
parseArgs(int argc, char **argv, Args &args)
{
    auto need = [&](int &i) -> std::optional<std::string> {
        if (i + 1 >= argc) {
            fail(std::string(argv[i]) + " needs a value");
            return std::nullopt;
        }
        return std::string(argv[++i]);
    };
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        std::optional<std::string> v;
        if (a == "--help" || a == "-h") {
            usage();
            std::exit(0);
        } else if (a == "--quiet") {
            args.quiet = true;
        } else if (a == "--no-summary") {
            args.summary = false;
        } else if (a == "--tenants") {
            if (!(v = need(i)))
                return false;
            const auto n = parseIntText(*v);
            if (!n || *n < 1)
                return fail("--tenants must be >= 1, got '" + *v + "'");
            args.tenants = int(*n);
        } else if (a == "--tenant") {
            if (!(v = need(i)))
                return false;
            TenantJob job;
            if (!parseTenantSpec(*v, job))
                return false;
            args.explicitTenants.push_back(std::move(job));
        } else if (a == "--arrivals") {
            if (!(v = need(i)))
                return false;
            args.arrivalsSpec = *v;
        } else if (a == "--trace") {
            if (!(v = need(i)))
                return false;
            args.tracePath = *v;
        } else if (a == "--save-trace") {
            if (!(v = need(i)))
                return false;
            args.saveTracePath = *v;
        } else if (a == "--admission") {
            args.admission = true;
        } else if (a == "--admission-cap") {
            if (!(v = need(i)))
                return false;
            const auto d = parseDoubleText(*v);
            if (!d || *d <= 0.0)
                return fail("--admission-cap must be > 0, got '" + *v +
                            "'");
            args.admissionCap = *d;
        } else if (a == "--steps") {
            if (!(v = need(i)))
                return false;
            const auto n = parseIntText(*v);
            if (!n || *n < 0)
                return fail("--steps must be >= 0, got '" + *v + "'");
            args.steps = std::uint64_t(*n);
        } else if (a == "--batch") {
            if (!(v = need(i)))
                return false;
            if (*v == "auto") {
                args.batch = kAutoBatch;
            } else {
                const auto n = parseIntText(*v);
                if (!n || *n < 1)
                    return fail("--batch must be >= 1 or 'auto', got '" +
                                *v + "'");
                args.batch = int(*n);
            }
        } else if (a == "--arrive-every") {
            if (!(v = need(i)))
                return false;
            const auto d = parseDoubleText(*v);
            if (!d || *d < 0.0)
                return fail("--arrive-every must be >= 0, got '" + *v +
                            "'");
            args.arriveEvery = *d;
        } else if (a == "--qos") {
            if (!(v = need(i)))
                return false;
            if (*v == "auto") {
                args.qosMode = Args::QosMode::kAuto;
            } else if (*v == "none") {
                args.qosMode = Args::QosMode::kNone;
            } else {
                const auto d = parseDoubleText(*v);
                if (!d || *d <= 0.0)
                    return fail("--qos takes auto, none, or a rate > 0; "
                                "got '" + *v + "'");
                args.qosMode = Args::QosMode::kRate;
                args.qosRate = *d;
            }
        } else if (a == "--policy" || a == "--policies") {
            if (!(v = need(i)))
                return false;
            args.policies.clear();
            if (a == "--policies" && *v == "all") {
                args.policies = allPolicies();
                continue;
            }
            for (const std::string &name : cli::splitList(*v)) {
                const auto p = policyFromName(name);
                if (!p)
                    return fail("unknown policy '" + name +
                                "' (want fifo, rr, prio, or edf)");
                args.policies.push_back(*p);
            }
            if (args.policies.empty())
                return fail(a + " needs at least one policy");
        } else if (a == "--quantum") {
            if (!(v = need(i)))
                return false;
            const auto n = parseIntText(*v);
            if (!n || *n < 1)
                return fail("--quantum must be >= 1, got '" + *v + "'");
            args.quantum = std::uint64_t(*n);
        } else if (a == "--wall-s") {
            if (!(v = need(i)))
                return false;
            const auto d = parseDoubleText(*v);
            if (!d || *d <= 0.0)
                return fail("--wall-s must be > 0, got '" + *v + "'");
            args.wallSec = *d;
        } else if (a == "--dataflow") {
            if (!(v = need(i)))
                return false;
            if (*v == "WS")
                args.dataflow = Dataflow::kWeightStationary;
            else if (*v == "OS")
                args.dataflow = Dataflow::kOutputStationary;
            else if (*v == "DiVa")
                args.dataflow = Dataflow::kOuterProduct;
            else
                return fail("--dataflow takes WS, OS, or DiVa; got '" +
                            *v + "'");
        } else if (a == "--ppu") {
            if (!(v = need(i)))
                return false;
            if (*v == "on")
                args.ppu = true;
            else if (*v == "off")
                args.ppu = false;
            else
                return fail("--ppu takes on/off, got '" + *v + "'");
        } else if (a == "--chips") {
            if (!(v = need(i)))
                return false;
            const auto n = parseIntText(*v);
            if (!n || *n < 1)
                return fail("--chips must be >= 1, got '" + *v + "'");
            args.chips = int(*n);
        } else if (a == "--backends") {
            if (!(v = need(i)))
                return false;
            const auto names = cli::parseBackendList("diva_serve", *v);
            if (!names)
                return false;
            args.backends = *names;
        } else if (a == "--threads") {
            if (!(v = need(i)))
                return false;
            const auto n = parseIntText(*v);
            if (!n || *n < 1)
                return fail("--threads must be >= 1, got '" + *v + "'");
            args.threads = int(*n);
        } else if (a == "--cache-dir") {
            if (!(v = need(i)))
                return false;
            args.cacheDir = *v;
        } else if (a == "--cache") {
            args.cacheDir = DiskCache::defaultDir();
        } else if (a == "--csv") {
            if (!(v = need(i)))
                return false;
            args.csvPath = *v;
        } else if (a == "--json") {
            if (!(v = need(i)))
                return false;
            args.jsonPath = *v;
        } else if (a == "--metrics-out") {
            if (!(v = need(i)))
                return false;
            args.obs.metricsOut = *v;
        } else if (a == "--trace-out") {
            if (!(v = need(i)))
                return false;
            args.obs.traceOut = *v;
        } else if (a == "--trace-max-events") {
            if (!(v = need(i)))
                return false;
            const auto n = parseIntText(*v);
            if (!n || *n < 1)
                return fail("--trace-max-events must be >= 1, got '" +
                            *v + "'");
            args.obs.traceMaxEvents = std::size_t(*n);
        } else if (a == "--timeseries-out") {
            if (!(v = need(i)))
                return false;
            args.obs.timeseriesOut = *v;
        } else if (a == "--obs-window-s") {
            if (!(v = need(i)))
                return false;
            const auto d = parseDoubleText(*v);
            if (!d || *d <= 0.0)
                return fail("--obs-window-s must be > 0, got '" + *v +
                            "'");
            args.obs.obsWindowSec = *d;
        } else if (a == "--slo-p99-s") {
            if (!(v = need(i)))
                return false;
            args.obs.sloSpecText = *v;
        } else if (a == "--profile") {
            args.obs.profile = true;
        } else if (a == "--verbose") {
            args.verbose = true;
        } else {
            fail("unknown option '" + a + "'");
            usage();
            return false;
        }
    }
    if (!args.arrivalsSpec.empty() && !args.tracePath.empty())
        return fail("--arrivals and --trace are mutually exclusive");
    const bool trace_mode =
        !args.arrivalsSpec.empty() || !args.tracePath.empty();
    if (trace_mode && !args.explicitTenants.empty())
        return fail("--tenant cannot be combined with --arrivals/"
                    "--trace (the trace is the mix)");
    if (!args.saveTracePath.empty() && !trace_mode)
        return fail("--save-trace needs --arrivals or --trace");
    if (args.steps == 0 && args.wallSec <= 0.0 &&
        args.explicitTenants.empty() && !trace_mode)
        return fail("--steps 0 (unbounded) needs --wall-s");
    return true;
}

AcceleratorConfig
platformConfig(const Args &args)
{
    switch (args.dataflow) {
      case Dataflow::kWeightStationary: {
        AcceleratorConfig cfg = tpuV3Ws();
        if (args.ppu)
            DIVA_WARN("WS has no PPU datapath; running with --ppu off");
        return cfg;
      }
      case Dataflow::kOutputStationary:
        return systolicOs(args.ppu);
      case Dataflow::kOuterProduct:
        return divaDefault(args.ppu);
    }
    return {};
}

TenantWorkload
buildWorkload(const Args &args)
{
    if (!args.explicitTenants.empty()) {
        TenantWorkload mix;
        std::ostringstream oss;
        oss << "custom-" << args.explicitTenants.size();
        mix.name = oss.str();
        for (std::size_t i = 0; i < args.explicitTenants.size(); ++i) {
            TenantJob job = args.explicitTenants[i];
            if (job.steps == kStepsUnset)
                job.steps = args.steps;
            std::ostringstream name;
            name << "t" << i << ":" << job.model;
            job.name = name.str();
            mix.jobs.push_back(std::move(job));
        }
        return mix;
    }
    TenantWorkload mix = defaultWorkload(args.tenants, args.steps,
                                         args.batch, args.arriveEvery);
    if (args.qosMode == Args::QosMode::kRate)
        for (TenantJob &job : mix.jobs)
            job.qosStepsPerSec = args.qosRate;
    return mix;
}

void
printSummary(std::ostream &os, const std::vector<ServeResult> &serves)
{
    os << "\n=== serve summary ===\n";
    TextTable runs({"policy", "makespan_s", "energy_j", "switches",
                    "switch_s", "mean_qos_pct", "lat_p50_s",
                    "lat_p99_s", "admitted"});
    for (const ServeResult &s : serves) {
        if (!s.ok()) {
            runs.addRow({policyName(s.policy), "-", "-", "-", "-", "-",
                         "-", "-", "error: " + s.error});
            continue;
        }
        const std::size_t admitted = s.admittedCount();
        runs.addRow({policyName(s.policy), formatDouble(s.makespanSec),
                     formatDouble(s.totalEnergyJ),
                     std::to_string(s.contextSwitches),
                     formatDouble(s.switchSec),
                     formatDouble(s.meanQosAttainmentPct),
                     formatDouble(s.aggStepLatency.p50Sec),
                     formatDouble(s.aggStepLatency.p99Sec),
                     std::to_string(admitted) + "/" +
                         std::to_string(s.tenants.size())});
    }
    runs.print(os);

    for (const ServeResult &s : serves) {
        if (!s.ok())
            continue;
        os << "\n--- policy " << policyName(s.policy) << " ("
           << s.configName;
        if (s.chips > 1)
            os << " x" << s.chips;
        os << ") ---\n";
        TextTable table({"tenant", "adm", "steps", "done",
                         "achieved/s", "isolated/s", "slowdown",
                         "p50_s", "p99_s", "qos_pct", "energy_share",
                         "switches"});
        for (const TenantMetrics &t : s.tenants)
            table.addRow({t.job.name, t.admitted ? "y" : "n",
                          std::to_string(t.job.steps),
                          std::to_string(t.stepsDone),
                          formatDouble(t.achievedStepsPerSec),
                          formatDouble(t.isolatedStepsPerSec),
                          formatDouble(t.slowdown),
                          formatDouble(t.stepLatency.p50Sec),
                          formatDouble(t.stepLatency.p99Sec),
                          formatDouble(t.qosAttainmentPct),
                          formatDouble(t.energyShare),
                          std::to_string(t.switchesIn)});
        table.print(os);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Args args;
    if (!parseArgs(argc, argv, args))
        return 1;
    if (args.verbose)
        setLogVerbosity(LogVerbosity::kVerbose);
    if (!args.obs.activate())
        return 1;

    SweepOptions opts;
    opts.threads = args.threads;
    opts.cacheDir = args.cacheDir;
    SweepRunner runner(opts);
    if (!args.quiet && runner.diskCache())
        std::cerr << "disk cache: " << runner.diskCache()->size()
                  << " entries in " << runner.diskCache()->filePath()
                  << "\n";

    // Trace replay: the arrival stream (generated or recorded)
    // replaces the static mix and drives the serve loop open-loop.
    const bool trace_mode =
        !args.arrivalsSpec.empty() || !args.tracePath.empty();
    ArrivalTrace trace;
    if (!args.tracePath.empty()) {
        std::string err;
        trace = loadTraceFile(args.tracePath, &err);
        if (!err.empty()) {
            std::cerr << "diva_serve: --trace: " << err << "\n";
            return 1;
        }
    } else if (!args.arrivalsSpec.empty()) {
        std::string err;
        auto gen = parseTraceGenSpec(args.arrivalsSpec, &err);
        if (!gen) {
            std::cerr << "diva_serve: --arrivals: " << err << "\n";
            return 1;
        }
        // Spec keys win; otherwise the mix-level flags fill the
        // per-session template.
        if (!gen->stepsSet)
            gen->steps = args.steps;
        if (!gen->batchSet)
            gen->batch = args.batch;
        if (!gen->qosSet && args.qosMode == Args::QosMode::kRate)
            gen->qosStepsPerSec = args.qosRate;
        trace = generateTrace(*gen);
        if (trace.jobs.empty()) {
            std::cerr << "diva_serve: --arrivals produced no arrivals "
                         "inside the horizon; raise rate or horizon\n";
            return 1;
        }
    }
    if (!args.saveTracePath.empty()) {
        std::ofstream trace_file(args.saveTracePath);
        if (!trace_file) {
            std::cerr << "diva_serve: cannot write "
                      << args.saveTracePath << "\n";
            return 1;
        }
        writeTraceCsv(trace_file, trace);
    }

    ServeSpec spec;
    spec.workload = buildWorkload(args);
    spec.config = platformConfig(args);
    spec.chips = args.chips;
    spec.backends = args.backends;
    spec.policy = args.policies.front();
    spec.opts.quantumIters = args.quantum;
    spec.opts.wallLimitSec = args.wallSec;
    spec.opts.autoQosFairShare =
        !trace_mode && args.explicitTenants.empty() &&
        args.qosMode == Args::QosMode::kAuto;
    // One telemetry bundle across all policy runs; the serve loop
    // prefixes its series "serve.<policy>.", so runs never collide.
    spec.opts.telemetry = args.obs.telemetry.get();

    AdmissionOptions admission;
    admission.utilizationCap = args.admissionCap;

    std::vector<ServeResult> serves;
    bool any_error = false;
    int policy_idx = 0;
    for (SchedPolicy policy : args.policies) {
        spec.policy = policy;
        // One track per policy run: the serve loop is sequential, so
        // each track keeps a single writer.
        if (args.obs.sink)
            spec.opts.traceTrack = args.obs.sink->track(
                policy_idx++, std::string("serve ") + policyName(policy));
        if (!args.quiet)
            std::cerr << (trace_mode ? "replaying trace '" + trace.name +
                                           "', "
                                     : "serving ")
                      << (trace_mode ? trace.jobs.size()
                                     : spec.workload.jobs.size())
                      << " tenant(s) under " << policyName(policy)
                      << " on " << spec.config.name
                      << (args.chips > 1
                              ? " x" + std::to_string(args.chips)
                              : "")
                      << (args.admission ? ", admission on" : "")
                      << "...\n";
        ServeResult r;
        if (trace_mode) {
            ReplaySpec rs;
            rs.trace = trace;
            rs.config = spec.config;
            rs.chips = spec.chips;
            rs.policy = policy;
            rs.backends = spec.backends;
            rs.opts = spec.opts;
            rs.admission = args.admission;
            rs.admissionOpts = admission;
            r = replayTrace(rs, runner);
        } else if (args.admission) {
            r = serveWithAdmission(spec, admission, runner);
        } else {
            r = simulateServe(spec, runner);
        }
        if (!r.ok()) {
            std::cerr << "diva_serve: " << policyName(policy) << ": "
                      << r.error << "\n";
            any_error = true;
        }
        serves.push_back(std::move(r));
    }

    {
        obs::ScopedPhase emit_phase("emit");
        std::ofstream csv_file;
        if (!args.csvPath.empty()) {
            csv_file.open(args.csvPath);
            if (!csv_file) {
                std::cerr << "diva_serve: cannot write " << args.csvPath
                          << "\n";
                return 1;
            }
        }
        std::ostream &csv = args.csvPath.empty() ? std::cout : csv_file;
        writeServeCsv(csv, serves);

        if (!args.jsonPath.empty()) {
            std::ofstream json_file(args.jsonPath);
            if (!json_file) {
                std::cerr << "diva_serve: cannot write "
                          << args.jsonPath << "\n";
                return 1;
            }
            writeServeJson(json_file, serves);
        }

        if (args.summary)
            printSummary(std::cout, serves);
    }
    if (!args.obs.finish())
        return 1;
    return any_error ? 2 : 0;
}
