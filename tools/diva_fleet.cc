/**
 * @file
 * diva_fleet: datacenter-scale fleet simulator driver.
 *
 * Replays an arrival trace (generated with --arrivals or recorded with
 * --trace) across a fleet of N pods -- each an independent time-shared
 * serve instance, heterogeneous fleets mixing dataflows, chip counts
 * and interconnects via repeated --pod templates -- under a
 * cluster-level placement policy, optional tenant migration on load
 * skew, and an optional fleet energy budget, then reports per-pod and
 * per-tenant utilization, energy share, QoS attainment, migration
 * counts/costs and p50/p95/p99 step latency.
 *
 * Per-(pod type, tenant class) isolated costs are ordinary sweep
 * scenarios run through the sweep engine, so --threads parallelizes
 * them and --cache-dir shares the persistent result cache with
 * diva_sweep/diva_serve. All fleet output on stdout (or --csv /
 * --pod-csv / --json files) is a pure function of the spec: --threads
 * N and warm-cache reruns are byte-identical. Progress and cache
 * accounting go to stderr.
 */

#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "arrivals/generate.h"
#include "arrivals/trace.h"
#include "cli_parse.h"
#include "common/format.h"
#include "common/logging.h"
#include "common/table.h"
#include "fleet/emit.h"
#include "fleet/engine.h"
#include "obs/cli.h"
#include "obs/profile.h"
#include "sweep/disk_cache.h"
#include "sweep/runner.h"

using namespace diva;

namespace
{

void
usage()
{
    std::cerr <<
        "usage: diva_fleet [options]\n"
        "\n"
        "Fleet shape:\n"
        "  --pods N            N identical single-chip DiVa pods\n"
        "                      (default 8)\n"
        "  --pod SPEC          add a pod group; SPEC is key=value\n"
        "                      pairs: df=WS|OS|DiVa, ppu=on|off,\n"
        "                      chips=N, count=N, ici-gbs=G, link-lat=C\n"
        "                      -- e.g. df=OS,chips=4,count=16.\n"
        "                      Repeat for a heterogeneous fleet\n"
        "                      (replaces --pods)\n"
        "\n"
        "Arrival trace (open-loop replay drives the fleet):\n"
        "  --arrivals SPEC     generate a seeded arrival trace:\n"
        "                      kind[:key=val,...], kind poisson|onoff|\n"
        "                      diurnal, keys rate,horizon,seed,cap,on,\n"
        "                      off,peak,steps,batch,qos,hold,prios --\n"
        "                      e.g. diurnal:rate=40,horizon=64,seed=1\n"
        "                      (default diurnal:rate=4,horizon=16,\n"
        "                      seed=1)\n"
        "  --trace FILE        replay a recorded trace (.csv, or\n"
        "                      .jsonl/.json with one object per line)\n"
        "  --save-trace PATH   write the replayed trace as canonical\n"
        "                      CSV (same seed => byte-identical file)\n"
        "\n"
        "Cluster policy:\n"
        "  --placement NAME    first-fit, load, or energy\n"
        "                      (default first-fit)\n"
        "  --policy NAME       per-pod scheduler: fifo, rr, prio, or\n"
        "                      edf (default rr)\n"
        "  --admission-cap U   fraction of one pod the admitted QoS\n"
        "                      demand placed there may claim\n"
        "                      (default 1.0); infeasible tenants are\n"
        "                      rejected\n"
        "  --rebalance-every S enable tenant migration between pods,\n"
        "                      checking load skew every S simulated\n"
        "                      seconds (0 = auto: an eighth of the\n"
        "                      trace span)\n"
        "  --skew F            utilization gap that triggers migration\n"
        "                      (default 0.25)\n"
        "  --max-migrations N  migration cap per control round\n"
        "                      (default 64)\n"
        "\n"
        "Energy budget:\n"
        "  --power-cap-w W     sustained fleet power cap in watts;\n"
        "                      low-priority tenants preempt when the\n"
        "                      projected draw exceeds it\n"
        "  --budget-j J        total joule budget for the whole run; a\n"
        "                      draining budget throttles progressively\n"
        "  --control-every S   control-loop interval for budget/\n"
        "                      rebalance decisions (overrides auto)\n"
        "\n"
        "Serving:\n"
        "  --working-set F     fraction of SRAM a context switch or\n"
        "                      migration moves, in (0, 1] (default 1)\n"
        "  --quantum N         iterations per scheduling quantum\n"
        "                      (default 1)\n"
        "  --wall-s S          wall-clock budget in simulated seconds;\n"
        "                      0 = run to completion\n"
        "  --backends LIST     allowed isolated-cost backends by\n"
        "                      registry name (default: all)\n"
        "\n"
        "Execution:\n"
        "  --threads N         worker threads for cost pricing and the\n"
        "                      per-epoch pod simulations (default 1;\n"
        "                      output is byte-identical for any value)\n"
        "  --cache-dir PATH    persistent result cache shared with\n"
        "                      diva_sweep/diva_serve\n"
        "  --cache             like --cache-dir with the default dir\n"
        "  --quiet             no stderr progress\n"
        "\n"
        "Output (deterministic; independent of --threads and cache):\n"
        "  --pod-csv PATH      write the per-pod CSV to PATH instead\n"
        "                      of stdout\n"
        "  --csv PATH          also write the per-tenant CSV (one row\n"
        "                      per session; large traces make this big)\n"
        "  --json PATH         also write a JSON report (fleet + pods)\n"
        "  --json-tenants      include every tenant in the JSON report\n"
        "  --no-summary        skip the stdout summary tables\n"
        "\n" << obs::cliObsUsage();
}

struct Args
{
    int pods = 8;
    std::vector<std::string> podSpecs;
    std::string arrivalsSpec;
    std::string tracePath;
    std::string saveTracePath;
    PlacementKind placement = PlacementKind::kFirstFit;
    SchedPolicy policy = SchedPolicy::kRoundRobin;
    double admissionCap = 1.0;
    bool rebalance = false;
    double rebalanceEvery = 0.0;
    double skew = 0.25;
    int maxMigrations = 64;
    double powerCapW = 0.0;
    double budgetJ = 0.0;
    double controlEvery = 0.0;
    double workingSet = 1.0;
    std::uint64_t quantum = 1;
    double wallSec = 0.0;
    std::vector<std::string> backends;
    int threads = 1;
    std::string cacheDir;
    bool quiet = false;
    bool summary = true;
    std::string podCsvPath;
    std::string csvPath;
    std::string jsonPath;
    bool jsonTenants = false;
    bool verbose = false;
    obs::CliObs obs;
};

using cli::parseDoubleText;
using cli::parseIntText;

bool
fail(const std::string &msg)
{
    std::cerr << "diva_fleet: " << msg << "\n";
    return false;
}

bool
parseArgs(int argc, char **argv, Args &args)
{
    auto need = [&](int &i) -> std::optional<std::string> {
        if (i + 1 >= argc) {
            fail(std::string(argv[i]) + " needs a value");
            return std::nullopt;
        }
        return std::string(argv[++i]);
    };
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        std::optional<std::string> v;
        if (a == "--help" || a == "-h") {
            usage();
            std::exit(0);
        } else if (a == "--quiet") {
            args.quiet = true;
        } else if (a == "--no-summary") {
            args.summary = false;
        } else if (a == "--json-tenants") {
            args.jsonTenants = true;
        } else if (a == "--pods") {
            if (!(v = need(i)))
                return false;
            const auto n = parseIntText(*v);
            if (!n || *n < 1)
                return fail("--pods must be >= 1, got '" + *v + "'");
            args.pods = int(*n);
        } else if (a == "--pod") {
            if (!(v = need(i)))
                return false;
            args.podSpecs.push_back(*v);
        } else if (a == "--arrivals") {
            if (!(v = need(i)))
                return false;
            args.arrivalsSpec = *v;
        } else if (a == "--trace") {
            if (!(v = need(i)))
                return false;
            args.tracePath = *v;
        } else if (a == "--save-trace") {
            if (!(v = need(i)))
                return false;
            args.saveTracePath = *v;
        } else if (a == "--placement") {
            if (!(v = need(i)))
                return false;
            const auto p = placementFromName(*v);
            if (!p)
                return fail("unknown placement '" + *v +
                            "' (want first-fit, load, or energy)");
            args.placement = *p;
        } else if (a == "--policy") {
            if (!(v = need(i)))
                return false;
            const auto p = policyFromName(*v);
            if (!p)
                return fail("unknown policy '" + *v +
                            "' (want fifo, rr, prio, or edf)");
            args.policy = *p;
        } else if (a == "--admission-cap") {
            if (!(v = need(i)))
                return false;
            const auto d = parseDoubleText(*v);
            if (!d || *d <= 0.0)
                return fail("--admission-cap must be > 0, got '" + *v +
                            "'");
            args.admissionCap = *d;
        } else if (a == "--rebalance-every") {
            if (!(v = need(i)))
                return false;
            const auto d = parseDoubleText(*v);
            if (!d || *d < 0.0)
                return fail("--rebalance-every must be >= 0 (0 = "
                            "auto), got '" + *v + "'");
            args.rebalance = true;
            args.rebalanceEvery = *d;
        } else if (a == "--skew") {
            if (!(v = need(i)))
                return false;
            const auto d = parseDoubleText(*v);
            if (!d || *d <= 0.0)
                return fail("--skew must be > 0, got '" + *v + "'");
            args.skew = *d;
        } else if (a == "--max-migrations") {
            if (!(v = need(i)))
                return false;
            const auto n = parseIntText(*v);
            if (!n || *n < 1)
                return fail("--max-migrations must be >= 1, got '" +
                            *v + "'");
            args.maxMigrations = int(*n);
        } else if (a == "--power-cap-w") {
            if (!(v = need(i)))
                return false;
            const auto d = parseDoubleText(*v);
            if (!d || *d <= 0.0)
                return fail("--power-cap-w must be > 0, got '" + *v +
                            "'");
            args.powerCapW = *d;
        } else if (a == "--budget-j") {
            if (!(v = need(i)))
                return false;
            const auto d = parseDoubleText(*v);
            if (!d || *d <= 0.0)
                return fail("--budget-j must be > 0, got '" + *v + "'");
            args.budgetJ = *d;
        } else if (a == "--control-every") {
            if (!(v = need(i)))
                return false;
            const auto d = parseDoubleText(*v);
            if (!d || *d <= 0.0)
                return fail("--control-every must be > 0, got '" + *v +
                            "'");
            args.controlEvery = *d;
        } else if (a == "--working-set") {
            if (!(v = need(i)))
                return false;
            const auto d = parseDoubleText(*v);
            if (!d || !(*d > 0.0) || *d > 1.0)
                return fail("--working-set must be in (0, 1], got '" +
                            *v + "'");
            args.workingSet = *d;
        } else if (a == "--quantum") {
            if (!(v = need(i)))
                return false;
            const auto n = parseIntText(*v);
            if (!n || *n < 1)
                return fail("--quantum must be >= 1, got '" + *v + "'");
            args.quantum = std::uint64_t(*n);
        } else if (a == "--wall-s") {
            if (!(v = need(i)))
                return false;
            const auto d = parseDoubleText(*v);
            if (!d || *d <= 0.0)
                return fail("--wall-s must be > 0, got '" + *v + "'");
            args.wallSec = *d;
        } else if (a == "--backends") {
            if (!(v = need(i)))
                return false;
            const auto names = cli::parseBackendList("diva_fleet", *v);
            if (!names)
                return false;
            args.backends = *names;
        } else if (a == "--threads") {
            if (!(v = need(i)))
                return false;
            const auto n = parseIntText(*v);
            if (!n || *n < 1)
                return fail("--threads must be >= 1, got '" + *v + "'");
            args.threads = int(*n);
        } else if (a == "--cache-dir") {
            if (!(v = need(i)))
                return false;
            args.cacheDir = *v;
        } else if (a == "--cache") {
            args.cacheDir = DiskCache::defaultDir();
        } else if (a == "--pod-csv") {
            if (!(v = need(i)))
                return false;
            args.podCsvPath = *v;
        } else if (a == "--csv") {
            if (!(v = need(i)))
                return false;
            args.csvPath = *v;
        } else if (a == "--json") {
            if (!(v = need(i)))
                return false;
            args.jsonPath = *v;
        } else if (a == "--metrics-out") {
            if (!(v = need(i)))
                return false;
            args.obs.metricsOut = *v;
        } else if (a == "--trace-out") {
            if (!(v = need(i)))
                return false;
            args.obs.traceOut = *v;
        } else if (a == "--trace-max-events") {
            if (!(v = need(i)))
                return false;
            const auto n = parseIntText(*v);
            if (!n || *n < 1)
                return fail("--trace-max-events must be >= 1, got '" +
                            *v + "'");
            args.obs.traceMaxEvents = std::size_t(*n);
        } else if (a == "--timeseries-out") {
            if (!(v = need(i)))
                return false;
            args.obs.timeseriesOut = *v;
        } else if (a == "--obs-window-s") {
            if (!(v = need(i)))
                return false;
            const auto d = parseDoubleText(*v);
            if (!d || *d <= 0.0)
                return fail("--obs-window-s must be > 0, got '" + *v +
                            "'");
            args.obs.obsWindowSec = *d;
        } else if (a == "--slo-p99-s") {
            if (!(v = need(i)))
                return false;
            args.obs.sloSpecText = *v;
        } else if (a == "--profile") {
            args.obs.profile = true;
        } else if (a == "--verbose") {
            args.verbose = true;
        } else {
            fail("unknown option '" + a + "'");
            usage();
            return false;
        }
    }
    if (!args.arrivalsSpec.empty() && !args.tracePath.empty())
        return fail("--arrivals and --trace are mutually exclusive");
    return true;
}

bool
buildFleetSpec(const Args &args, FleetSpec &spec)
{
    std::vector<std::vector<PodSpec>> groups;
    if (!args.podSpecs.empty()) {
        for (const std::string &text : args.podSpecs) {
            std::string err;
            const auto group = parsePodTemplate(text, &err);
            if (!group)
                return fail("--pod '" + text + "': " + err);
            groups.push_back(*group);
        }
    } else {
        groups.push_back(defaultPodGroup(args.pods));
    }
    spec = buildFleet(groups);
    spec.policy = args.policy;
    spec.placement = args.placement;
    spec.podDemandCap = args.admissionCap;
    spec.rebalance.enabled = args.rebalance;
    spec.rebalance.skewThreshold = args.skew;
    spec.rebalance.maxPerRound = args.maxMigrations;
    spec.budget.powerCapW = args.powerCapW;
    spec.budget.totalJ = args.budgetJ;
    spec.controlIntervalSec = args.controlEvery > 0.0
                                  ? args.controlEvery
                                  : args.rebalanceEvery;
    spec.workingSetFraction = args.workingSet;
    spec.quantumIters = args.quantum;
    spec.wallLimitSec = args.wallSec;
    spec.backends = args.backends;
    const std::string err = spec.validationError();
    if (!err.empty())
        return fail(err);
    return true;
}

void
printSummary(std::ostream &os, const FleetResult &f)
{
    os << "\n=== fleet summary ===\n";
    TextTable run({"fleet", "trace", "policy", "placement", "placed",
                   "rejected", "steps", "makespan_s", "energy_j",
                   "migrations", "suspensions", "mean_qos_pct",
                   "lat_p50_s", "lat_p99_s"});
    run.addRow({f.fleetName, f.traceName, policyName(f.policy),
                placementName(f.placement),
                std::to_string(f.placedCount),
                std::to_string(f.rejectedCount),
                std::to_string(f.totalSteps),
                formatDouble(f.makespanSec),
                formatDouble(f.totalEnergyJ),
                std::to_string(f.migrations),
                std::to_string(f.suspensions),
                formatDouble(f.meanQosAttainmentPct),
                formatDouble(f.aggStepLatency.p50Sec),
                formatDouble(f.aggStepLatency.p99Sec)});
    run.print(os);

    os << "\n--- pods ---\n";
    TextTable table({"pod", "config", "chips", "placed", "in", "out",
                     "steps", "busy_s", "util", "energy_share",
                     "qos_pct", "p99_s"});
    for (const FleetPodReport &p : f.pods)
        table.addRow({p.name, p.configName, std::to_string(p.chips),
                      std::to_string(p.placed),
                      std::to_string(p.migratedIn),
                      std::to_string(p.migratedOut),
                      std::to_string(p.stepsDone),
                      formatDouble(p.busySec),
                      formatDouble(p.utilization),
                      formatDouble(p.energyShare),
                      formatDouble(p.meanQosAttainmentPct),
                      formatDouble(p.stepLatency.p99Sec)});
    table.print(os);
}

} // namespace

int
main(int argc, char **argv)
{
    Args args;
    if (!parseArgs(argc, argv, args))
        return 1;
    if (args.verbose)
        setLogVerbosity(LogVerbosity::kVerbose);
    if (!args.obs.activate())
        return 1;

    FleetSpec spec;
    if (!buildFleetSpec(args, spec))
        return 1;

    ArrivalTrace trace;
    if (!args.tracePath.empty()) {
        std::string err;
        trace = loadTraceFile(args.tracePath, &err);
        if (!err.empty()) {
            std::cerr << "diva_fleet: --trace: " << err << "\n";
            return 1;
        }
    } else {
        const std::string spec_text = args.arrivalsSpec.empty()
                                          ? "diurnal:rate=4,horizon="
                                            "16,seed=1"
                                          : args.arrivalsSpec;
        std::string err;
        const auto gen = parseTraceGenSpec(spec_text, &err);
        if (!gen) {
            std::cerr << "diva_fleet: --arrivals: " << err << "\n";
            return 1;
        }
        trace = generateTrace(*gen);
        if (trace.jobs.empty()) {
            std::cerr << "diva_fleet: --arrivals produced no arrivals "
                         "inside the horizon; raise rate or horizon\n";
            return 1;
        }
    }
    if (!args.saveTracePath.empty()) {
        std::ofstream trace_file(args.saveTracePath);
        if (!trace_file) {
            std::cerr << "diva_fleet: cannot write "
                      << args.saveTracePath << "\n";
            return 1;
        }
        writeTraceCsv(trace_file, trace);
    }

    SweepOptions opts;
    opts.threads = args.threads;
    opts.cacheDir = args.cacheDir;
    SweepRunner runner(opts);
    if (!args.quiet && runner.diskCache())
        std::cerr << "disk cache: " << runner.diskCache()->size()
                  << " entries in " << runner.diskCache()->filePath()
                  << "\n";
    if (!args.quiet)
        std::cerr << "replaying trace '" << trace.name << "' ("
                  << trace.jobs.size() << " sessions) on " << spec.name
                  << " under " << policyName(spec.policy) << "/"
                  << placementName(spec.placement)
                  << (spec.rebalance.enabled ? ", rebalance on" : "")
                  << (spec.budget.enabled() ? ", budget on" : "")
                  << "...\n";

    const FleetResult fleet = simulateFleet(
        spec, trace, runner, args.threads, args.obs.sink.get(),
        args.obs.telemetry.get());
    if (!fleet.ok())
        std::cerr << "diva_fleet: " << fleet.error << "\n";
    else if (!args.quiet)
        std::cerr << "plan cache: " << fleet.planHits << " hits, "
                  << fleet.planMisses << " misses\n";

    {
        obs::ScopedPhase emitPhase("emit");
        std::ofstream pod_csv_file;
        if (!args.podCsvPath.empty()) {
            pod_csv_file.open(args.podCsvPath);
            if (!pod_csv_file) {
                std::cerr << "diva_fleet: cannot write "
                          << args.podCsvPath << "\n";
                return 1;
            }
        }
        std::ostream &pod_csv =
            args.podCsvPath.empty() ? std::cout : pod_csv_file;
        writeFleetPodCsv(pod_csv, fleet);

        if (!args.csvPath.empty()) {
            std::ofstream csv_file(args.csvPath);
            if (!csv_file) {
                std::cerr << "diva_fleet: cannot write " << args.csvPath
                          << "\n";
                return 1;
            }
            writeFleetTenantCsv(csv_file, fleet);
        }
        if (!args.jsonPath.empty()) {
            std::ofstream json_file(args.jsonPath);
            if (!json_file) {
                std::cerr << "diva_fleet: cannot write " << args.jsonPath
                          << "\n";
                return 1;
            }
            writeFleetJson(json_file, fleet, args.jsonTenants);
        }
    }

    if (args.summary && fleet.ok())
        printSummary(std::cout, fleet);
    if (!args.obs.finish())
        return 1;
    return fleet.ok() ? 0 : 2;
}
